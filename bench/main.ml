(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§8).  Run `main.exe <experiment>` with one of
   table1 fig11a fig11b fig11c fig12 fig13 fig14 fig15 fig16 ablate
   scaleout speedup sched replay micro cpsolve emit chunked outofcore,
   or no argument for the full suite.  EXPERIMENTS.md records the shapes
   the paper reports next to what this harness prints. *)

module Driver = Mirage_core.Driver
module Error = Mirage_core.Error
module Extract = Mirage_core.Extract
module Workload = Mirage_core.Workload
module Types = Mirage_baselines.Types
module Par = Mirage_par.Par

let pf = Printf.printf

let header title =
  pf "\n====================================================================\n";
  pf "%s\n" title;
  pf "====================================================================\n%!"

(* --- machine-readable trajectory ----------------------------------------- *)

(* Every experiment that measures generation appends an entry here; the
   accumulated trajectory is written to BENCH_mirage.json (override the path
   with BENCH_JSON) when the process exits, so CI can archive one artifact
   per run and the perf history stays diffable from this PR onward. *)
module Bench_json = struct
  type entry = {
    experiment : string;
    workload : string;
    label : string;
    domains : int;
    (* physical cores of the host (schema v2): the speedup gate only
       enforces scaling thresholds the machine can physically express *)
    cores : int;
    seconds : float;
    rows_per_s : float;
    peak_mb : float;
    (* memory trajectory: heap high-water attributable to THIS entry (see
       [record] — top_heap_words is a process-lifetime mark, so an entry
       that didn't move it reports the current heap instead of inheriting
       an earlier experiment's peak) and the working-set bytes per generated
       row.  dev/bench_gate.exe gates on >2x bytes_per_row regressions. *)
    peak_heap_words : int;
    bytes_per_row : float;
    speedup_vs_1 : float;
    (* output trajectory (this PR onward): CSV bytes written per wall-second
       by the emit experiment; 0 for experiments that don't export.
       dev/bench_gate.exe gates on >2x emit rows/s regressions. *)
    mb_per_s : float;
    (* CP-kernel trajectory (this PR onward): search nodes, propagator
       executions, the naive-sweep reference propagation count (cpsolve
       only) and cross-partition cache hits *)
    cp_nodes : int;
    cp_props : int;
    cp_naive_props : int;
    cp_cache_hits : int;
    (* streamed-generation trajectory (schema v3): the chunk-plan row count
       the entry generated or exported with (0 = monolithic) and the
       driver-reported generation peak working set in MB (0 for entries
       that never ran generation).  dev/bench_gate.exe gates gen-64x peak
       against gen-16x on these entries. *)
    chunk_rows : int;
    gen_peak_mb : float;
    (* scheduler trajectory (schema v4): per-stage generation seconds and
       pool utilization t_cpu / (t_total - t_extract) — the effective
       parallelism of the run.  All 0 for entries that never ran
       generation.  dev/bench_gate.exe gates the overlap schedule's
       wall-time win on the sched entries. *)
    t_cdf : float;
    t_gd : float;
    t_cp : float;
    t_pf : float;
    utilization : float;
  }

  let entries : entry list ref = ref []

  (* [Gc.top_heap_words] is a process-lifetime high-water mark that never
     resets, so a naive read makes every entry after the hungriest
     experiment inherit its peak.  Track the mark between entries: when this
     entry raised it, the new mark is this entry's peak; when it didn't,
     the best per-entry bound available is the live heap right now. *)
  let last_top = ref 0

  let record ~experiment ~workload ~label ~domains ~seconds ~rows_per_s ~peak_mb
      ?(bytes_per_row = 0.0) ?(speedup_vs_1 = 1.0) ?(mb_per_s = 0.0)
      ?(cp_nodes = 0) ?(cp_props = 0) ?(cp_naive_props = 0)
      ?(cp_cache_hits = 0) ?(chunk_rows = 0) ?(gen_peak_mb = 0.0) ?gen () =
    (* [~gen:r] fills the per-stage fields from a generation result *)
    let t_cdf, t_gd, t_cp, t_pf, utilization =
      match gen with
      | None -> (0.0, 0.0, 0.0, 0.0, 0.0)
      | Some (r : Driver.result) ->
          let t = r.Driver.r_timings in
          let g = t.Driver.t_total -. t.Driver.t_extract in
          ( t.Driver.t_cdf, t.Driver.t_gd, t.Driver.t_cp, t.Driver.t_pf,
            if g > 0.0 then t.Driver.t_cpu /. g else 0.0 )
    in
    let st = Gc.quick_stat () in
    let peak_heap_words =
      if st.Gc.top_heap_words > !last_top then st.Gc.top_heap_words
      else st.Gc.heap_words
    in
    last_top := st.Gc.top_heap_words;
    let cores = Domain.recommended_domain_count () in
    entries :=
      { experiment; workload; label; domains; cores; seconds; rows_per_s;
        peak_mb; peak_heap_words; bytes_per_row; speedup_vs_1; mb_per_s;
        cp_nodes; cp_props; cp_naive_props; cp_cache_hits; chunk_rows;
        gen_peak_mb; t_cdf; t_gd; t_cp; t_pf; utilization }
      :: !entries

  let path () =
    match Sys.getenv_opt "BENCH_JSON" with
    | Some p -> p
    | None -> "BENCH_mirage.json"

  let json_float f = if Float.is_finite f then Printf.sprintf "%.6f" f else "null"

  let json_string s =
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (function
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b

  let write () =
    match List.rev !entries with
    | [] -> ()
    | es ->
        let oc = open_out (path ()) in
        output_string oc "{\n  \"schema_version\": 4,\n  \"entries\": [\n";
        List.iteri
          (fun i e ->
            if i > 0 then output_string oc ",\n";
            output_string oc
              (Printf.sprintf
                 "    {\"experiment\": %s, \"workload\": %s, \"label\": %s, \
                  \"domains\": %d, \"cores\": %d, \"seconds\": %s, \
                  \"rows_per_s\": %s, \
                  \"peak_mb\": %s, \"peak_heap_words\": %d, \
                  \"bytes_per_row\": %s, \"speedup_vs_1\": %s, \
                  \"mb_per_s\": %s, \"cp_nodes\": %d, \"cp_props\": %d, \
                  \"cp_naive_props\": %d, \"cp_cache_hits\": %d, \
                  \"chunk_rows\": %d, \"gen_peak_mb\": %s, \
                  \"t_cdf\": %s, \"t_gd\": %s, \"t_cp\": %s, \"t_pf\": %s, \
                  \"utilization\": %s}"
                 (json_string e.experiment) (json_string e.workload)
                 (json_string e.label) e.domains e.cores (json_float e.seconds)
                 (json_float e.rows_per_s) (json_float e.peak_mb)
                 e.peak_heap_words (json_float e.bytes_per_row)
                 (json_float e.speedup_vs_1) (json_float e.mb_per_s)
                 e.cp_nodes e.cp_props e.cp_naive_props e.cp_cache_hits
                 e.chunk_rows (json_float e.gen_peak_mb) (json_float e.t_cdf)
                 (json_float e.t_gd) (json_float e.t_cp) (json_float e.t_pf)
                 (json_float e.utilization)))
          es;
        output_string oc "\n  ]\n}\n";
        close_out oc;
        pf "\n[bench] wrote %d entries to %s\n%!" (List.length es) (path ())

  let () = at_exit write
end

(* --- shared runners ------------------------------------------------------ *)

type wl = { wl_name : string; wl_sf : float; wl_groups : int option }

let workloads =
  [
    { wl_name = "ssb"; wl_sf = 1.0; wl_groups = None };
    { wl_name = "tpch"; wl_sf = 0.2; wl_groups = None };
    { wl_name = "tpcds"; wl_sf = 0.2; wl_groups = Some 5 };
  ]

(* MIRAGE_BENCH_SF scales every workload down (or up) uniformly — the CI
   smoke job runs the same experiments at a tiny fraction of the paper's
   scale *)
let bench_sf_scale =
  match Sys.getenv_opt "MIRAGE_BENCH_SF" with
  | Some s -> ( match float_of_string_opt s with Some f when f > 0.0 -> f | _ -> 1.0)
  | None -> 1.0

(* [~scale:false] bypasses MIRAGE_BENCH_SF: the speedup experiment sets its
   own absolute scale (big enough for parallel work to be meaningful) and
   must not be shrunk back into spawn-overhead noise by the CI smoke knob *)
let make_workload ?sf_override ?(scale = true) wl =
  let sf = match sf_override with Some s -> s | None -> wl.wl_sf in
  let sf = if scale then sf *. bench_sf_scale else sf in
  match wl.wl_name with
  | "ssb" -> Mirage_workloads.Ssb.make ~sf ~seed:7
  | "tpch" -> Mirage_workloads.Tpch.make ~sf ~seed:7
  | "tpcds" -> Mirage_workloads.Tpcds.make ~sf ~seed:7
  | other -> invalid_arg ("unknown workload " ^ other)

let bench_config = { Driver.default_config with batch_size = 1_000_000 }

let run_mirage ?(config = bench_config) workload ref_db prod_env =
  match Driver.generate ~config workload ~ref_db ~prod_env with
  | Ok r -> r
  | Error d -> failwith ("mirage generation failed: " ^ Mirage_core.Diag.to_string d)

(* generation seconds as the paper counts them: total minus extraction *)
let gen_seconds (r : Driver.result) =
  r.Driver.r_timings.Driver.t_total -. r.Driver.r_timings.Driver.t_extract

let peak_mb (r : Driver.result) =
  float_of_int r.Driver.r_peak_bytes /. 1_048_576.0

let db_rows db =
  List.fold_left
    (fun acc (tbl : Mirage_sql.Schema.table) ->
      acc + Mirage_engine.Db.row_count db tbl.Mirage_sql.Schema.tname)
    0
    (Mirage_sql.Schema.tables (Mirage_engine.Db.schema db))

(* generation working-set bytes per generated row — the acceptance metric
   the memory gate tracks *)
let bytes_per_row (r : Driver.result) =
  float_of_int r.Driver.r_peak_bytes
  /. float_of_int (max 1 (db_rows r.Driver.r_db))

(* uniform output-throughput metric: MB/s is always the exact CSV export
   size of the produced database (Scale_out.csv_bytes — what an emit of the
   run's output would write) over the measured seconds.  Experiments that
   never touch disk report it too, so fig13/fig14/speedup/replay entries are
   directly comparable with emit/chunked instead of recording 0.0. *)
let csv_mb ?(copies = 1) db =
  float_of_int (Mirage_core.Scale_out.csv_bytes ~db ~copies ()) /. 1_048_576.0

let csv_mb_per_s db seconds =
  if seconds > 0.0 then csv_mb db /. seconds else 0.0

(* resident bytes of a set of live values: majors + compacts, then counts
   live words.  Used to price the generated database itself. *)
let live_bytes_now () =
  Gc.compact ();
  (Gc.stat ()).Gc.live_words * (Sys.word_size / 8)

(* the fig15/fig16 sweeps step the query count through the same quartiles *)
let quarter_steps total =
  List.sort_uniq compare
    [ max 1 (total / 4); max 1 (total / 2); max 1 (3 * total / 4); total ]

(* per-workload sweep runner: prints the workload banner row, then the body *)
let foreach_workload ?(wls = workloads) f = List.iter f wls

let score_baseline (r : Types.result) aqts =
  let errs = Error.measure ~aqts ~db:r.Types.b_db ~env:r.Types.b_env in
  List.map
    (fun (e : Error.query_error) ->
      if List.mem e.Error.qe_name r.Types.b_unsupported then
        { e with Error.qe_relative = 1.0 }
      else e)
    errs

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(* --- Table 1 ------------------------------------------------------------- *)

let table1 () =
  header
    "Table 1: operator supportability (TPC-H counts measured on this repo's \
     templates; QAGen/MyBenchmark/DCGen are literature rows)";
  Fmt.pr "%a@." Mirage_baselines.Capability.pp (Mirage_baselines.Capability.table ())

(* --- Fig. 11: relative errors per query ---------------------------------- *)

let fig11 wl =
  header
    (Printf.sprintf
       "Fig. 11 (%s): per-query relative error; 1.0000 = unsupported.  Paper \
        shape: Mirage ~0 everywhere; Touchstone small errors where supported; \
        Hydra small errors with unsupported spikes."
       wl.wl_name);
  let workload, ref_db, prod_env = make_workload wl in
  let r = run_mirage workload ref_db prod_env in
  let mirage_errs = Driver.measure_errors r in
  let aqts = r.Driver.r_extraction.Extract.aqts in
  (* the two baseline generators are independent of each other — fan out on
     the resident pool *)
  let ts, hy =
    let pool = Par.get ~domains:2 () in
    Par.both pool
      (fun () ->
        Mirage_baselines.Touchstone.generate workload ~ref_db ~prod_env ~seed:11)
      (fun () ->
        Mirage_baselines.Hydra.generate workload ~ref_db ~prod_env ~seed:11)
  in
  let ts_errs = score_baseline ts aqts and hy_errs = score_baseline hy aqts in
  let err_of l name =
    match List.find_opt (fun (e : Error.query_error) -> e.Error.qe_name = name) l with
    | Some e -> e.Error.qe_relative
    | None -> 1.0
  in
  let names =
    List.map (fun (q : Workload.query) -> q.Workload.q_name) workload.Workload.w_queries
  in
  (match wl.wl_groups with
  | None ->
      pf "%-14s %10s %12s %10s\n" "query" "mirage" "touchstone" "hydra";
      List.iter
        (fun n ->
          pf "%-14s %10.5f %12.5f %10.5f\n" n (err_of mirage_errs n) (err_of ts_errs n)
            (err_of hy_errs n))
        names
  | Some g ->
      pf "%-8s %10s %12s %10s   (mean of %d queries per group)\n" "group" "mirage"
        "touchstone" "hydra" g;
      let arr = Array.of_list names in
      let ngroups = (Array.length arr + g - 1) / g in
      for gi = 0 to ngroups - 1 do
        let members =
          Array.to_list (Array.sub arr (gi * g) (min g (Array.length arr - (gi * g))))
        in
        pf "%-8d %10.5f %12.5f %10.5f\n" (gi + 1)
          (mean (List.map (err_of mirage_errs) members))
          (mean (List.map (err_of ts_errs) members))
          (mean (List.map (err_of hy_errs) members))
      done);
  pf "mean relative error: mirage=%.5f touchstone=%.5f hydra=%.5f\n%!"
    (mean (List.map (fun (e : Error.query_error) -> e.Error.qe_relative) mirage_errs))
    (mean (List.map (fun (e : Error.query_error) -> e.Error.qe_relative) ts_errs))
    (mean (List.map (fun (e : Error.query_error) -> e.Error.qe_relative) hy_errs))

(* --- Fig. 12: query latency fidelity ------------------------------------- *)

let fig12 () =
  header
    "Fig. 12: query latency, production vs Mirage-simulated database (same \
     engine).  Paper shape: mean deviation < 6% per workload.";
  List.iter
    (fun wl ->
      let workload, ref_db, prod_env = make_workload wl in
      let r = run_mirage workload ref_db prod_env in
      let lats =
        Error.latencies ~aqts:r.Driver.r_extraction.Extract.aqts ~ref_db ~prod_env
          ~synth_db:r.Driver.r_db ~synth_env:r.Driver.r_env ~repeat:5
      in
      let devs =
        List.map
          (fun (l : Error.latency) ->
            if l.Error.lat_ref > 0.0 then
              abs_float (l.Error.lat_synth -. l.Error.lat_ref) /. l.Error.lat_ref
            else 0.0)
          lats
      in
      pf "\n%s (mean |latency deviation| = %.2f%%)\n" wl.wl_name (100.0 *. mean devs);
      if wl.wl_name = "tpch" then begin
        pf "%-14s %12s %12s %10s\n" "query" "ref(ms)" "synth(ms)" "dev%";
        List.iter
          (fun (l : Error.latency) ->
            pf "%-14s %12.3f %12.3f %9.1f%%\n" l.Error.lat_name
              (1000.0 *. l.Error.lat_ref)
              (1000.0 *. l.Error.lat_synth)
              (if l.Error.lat_ref > 0.0 then
                 100.0 *. (l.Error.lat_synth -. l.Error.lat_ref) /. l.Error.lat_ref
               else 0.0))
          lats
      end;
      pf "%!")
    workloads

(* --- Fig. 13: generation time vs scale factor ---------------------------- *)

let fig13 () =
  header
    "Fig. 13: generation time vs scale (paper: SF 200..1000; here the row \
     scale is swept proportionally).  Paper shape: all tools linear in SF; \
     Hydra fastest but supports the fewest queries; Mirage ~ Touchstone.";
  let sweep = [ 0.25; 0.5; 0.75; 1.0 ] in
  foreach_workload (fun wl ->
      pf "\n%s (base sf %.2f scaled by the factors below)\n" wl.wl_name wl.wl_sf;
      pf "%-8s %12s %14s %12s\n%!" "scale" "mirage(s)" "touchstone(s)" "hydra(s)";
      List.iter
        (fun factor ->
          let sf = wl.wl_sf *. factor in
          let workload, ref_db, prod_env = make_workload ~sf_override:sf wl in
          let r = run_mirage workload ref_db prod_env in
          let m_time = gen_seconds r in
          let ts, hy =
            let pool = Par.get ~domains:2 () in
            Par.both pool
              (fun () ->
                Mirage_baselines.Touchstone.generate workload ~ref_db ~prod_env
                  ~seed:11)
              (fun () ->
                Mirage_baselines.Hydra.generate workload ~ref_db ~prod_env
                  ~seed:11)
          in
          Bench_json.record ~experiment:"fig13" ~workload:wl.wl_name
            ~label:(Printf.sprintf "scale=%.2f" factor)
            ~domains:r.Driver.r_timings.Driver.domains_used ~seconds:m_time
            ~rows_per_s:(float_of_int (db_rows r.Driver.r_db) /. m_time)
            ~peak_mb:(peak_mb r) ~bytes_per_row:(bytes_per_row r)
            ~mb_per_s:(csv_mb_per_s r.Driver.r_db m_time)
            ~gen_peak_mb:(peak_mb r) ~gen:r ();
          pf "%-8.2f %12.3f %14.3f %12.3f\n%!" factor m_time ts.Types.b_seconds
            hy.Types.b_seconds)
        sweep)

(* --- Fig. 14: batch size vs generation efficiency & memory --------------- *)

let fig14 () =
  header
    "Fig. 14: batch size vs per-stage generation time and memory.  Paper \
     shape: GD/CS/PF stable; CP time falls as batches grow (fewer CP \
     solves); memory grows with batch size.";
  foreach_workload (fun wl ->
      let workload, ref_db, prod_env = make_workload wl in
      (* one solve cache across the whole batch sweep: population systems
         recur between batch sizes (same workload, same seed), so the sweep
         exercises the cross-run cache path the daemon will rely on.
         Outcomes are replay-identical, so only CP time changes. *)
      let cache = Mirage_core.Solve_cache.create () in
      pf "\n%s\n%-10s %8s %8s %8s %8s %8s %10s %10s %12s\n%!" wl.wl_name "batch"
        "gd(s)" "cs(s)" "cp(s)" "pf(s)" "total" "cp-solves" "cache-hits"
        "batch-ws(MB)";
      (* warm-up: the first measured batch size otherwise pays the cold CDF
         work, solve cache and pool spawn for the whole sweep — batch=1000
         reported ~3x lower rows/s than a warm repeat.  One unrecorded run
         at the smallest batch fills the shared cache and the resident pool
         so every measured entry sees identical warm state. *)
      ignore
        (run_mirage
           ~config:
             { bench_config with Driver.batch_size = 1_000; cache = Some cache }
           workload ref_db prod_env);
      List.iter
        (fun batch ->
          let config =
            { bench_config with Driver.batch_size = batch; cache = Some cache }
          in
          let r = run_mirage ~config workload ref_db prod_env in
          let t = r.Driver.r_timings in
          Bench_json.record ~experiment:"fig14" ~workload:wl.wl_name
            ~label:(Printf.sprintf "batch=%d" batch)
            ~domains:t.Driver.domains_used ~seconds:(gen_seconds r)
            ~rows_per_s:(float_of_int (db_rows r.Driver.r_db) /. gen_seconds r)
            ~peak_mb:(peak_mb r) ~bytes_per_row:(bytes_per_row r)
            ~mb_per_s:(csv_mb_per_s r.Driver.r_db (gen_seconds r))
            ~cp_nodes:t.Driver.cp_nodes ~cp_props:t.Driver.cp_props
            ~cp_cache_hits:t.Driver.cp_cache_hits ~gen_peak_mb:(peak_mb r)
            ~gen:r ();
          pf "%-10d %8.3f %8.3f %8.3f %8.3f %8.3f %10d %10d %12.2f\n%!" batch
            t.Driver.t_gd t.Driver.t_cs t.Driver.t_cp t.Driver.t_pf
            (gen_seconds r) t.Driver.cp_solves t.Driver.cp_cache_hits
            (float_of_int t.Driver.batch_alloc_bytes /. 1_048_576.0))
        [ 1_000; 2_000; 4_000; 7_000; 10_000; 1_000_000 ];
      let h = Mirage_core.Solve_cache.hits cache
      and m = Mirage_core.Solve_cache.misses cache in
      pf "%s solve cache across the sweep: %d hits / %d solves (%.0f%%)\n%!"
        wl.wl_name h (h + m)
        (100.0 *. float_of_int h /. float_of_int (max 1 (h + m))))

(* --- Fig. 15: number of queries vs generation efficiency ----------------- *)

let fig15 () =
  header
    "Fig. 15: generation time and memory as queries are added stepwise.  \
     Paper shape: GD/PF stable; CS stable; CP grows with constraint count \
     (faster for TPC-H, which has JDCs); memory stable.";
  foreach_workload (fun wl ->
      let workload, ref_db, prod_env = make_workload wl in
      let steps = quarter_steps (List.length workload.Workload.w_queries) in
      pf "\n%s\n%-9s %8s %8s %8s %8s %8s %10s\n%!" wl.wl_name "queries" "gd(s)"
        "cs(s)" "cp(s)" "pf(s)" "total" "peak(MB)";
      List.iter
        (fun n ->
          let sub = Workload.take workload n in
          let r = run_mirage sub ref_db prod_env in
          let t = r.Driver.r_timings in
          pf "%-9d %8.3f %8.3f %8.3f %8.3f %8.3f %10.1f\n%!" n t.Driver.t_gd
            t.Driver.t_cs t.Driver.t_cp t.Driver.t_pf (gen_seconds r)
            (peak_mb r))
        steps)

(* --- Fig. 16: portraying non-key distributions --------------------------- *)

let fig16 () =
  header
    "Fig. 16: time to portray non-key distributions (decoupling + CDF \
     construction) and ACC sampling/instantiation, as queries are added.  \
     Paper shape: CDF portraying <= 20ms per column; ACC solving within 2s; \
     memory conservative.";
  foreach_workload (fun wl ->
      let workload, ref_db, prod_env = make_workload wl in
      let steps = quarter_steps (List.length workload.Workload.w_queries) in
      pf "\n%s\n%-9s %12s %10s %10s %10s\n%!" wl.wl_name "queries" "decouple(s)"
        "cdf(s)" "acc(s)" "peak(MB)";
      List.iter
        (fun n ->
          let sub = Workload.take workload n in
          let r = run_mirage sub ref_db prod_env in
          let t = r.Driver.r_timings in
          pf "%-9d %12.4f %10.4f %10.4f %10.1f\n%!" n t.Driver.t_decouple
            t.Driver.t_cdf t.Driver.t_acc (peak_mb r))
        steps)

(* --- Scale-out: linear generation of enormous databases ------------------- *)

let scaleout () =
  header
    "Scale-out (the paper's terabyte-generation claim): tiling a generated \
     database to CSV.  Expected shape: throughput (rows/s) flat in the copy \
     count, memory flat (one window of tiles resident).";
  let wl = List.nth workloads 0 in
  let workload, ref_db, prod_env = make_workload wl in
  let r = run_mirage workload ref_db prod_env in
  let base_rows =
    List.fold_left
      (fun acc (_, n) -> acc + n)
      0
      (Mirage_core.Scale_out.scaled_rows r.Driver.r_db ~copies:1)
  in
  let pool = Par.get () in
  pf "%-8s %12s %10s %14s %10s\n%!" "copies" "rows" "write(s)" "rows/s"
    "peak(MB)";
  List.iter
    (fun copies ->
      let dir = Filename.temp_file "mirage_scale" "" in
      Sys.remove dir;
      let dt, bytes =
        Mirage_util.Mem.measure (fun () ->
            let t0 = Unix.gettimeofday () in
            Mirage_core.Scale_out.to_csv_dir ~pool ~db:r.Driver.r_db ~copies
              ~dir ();
            Unix.gettimeofday () -. t0)
      in
      let rows_per_s = float_of_int (copies * base_rows) /. dt in
      let mb = float_of_int bytes /. 1_048_576.0 in
      Bench_json.record ~experiment:"scaleout" ~workload:wl.wl_name
        ~label:(Printf.sprintf "copies=%d" copies)
        ~domains:(Par.size pool) ~seconds:dt ~rows_per_s ~peak_mb:mb
        ~bytes_per_row:(float_of_int bytes /. float_of_int (copies * base_rows))
        ~mb_per_s:(csv_mb ~copies r.Driver.r_db /. dt) ();
      pf "%-8d %12d %10.3f %14.0f %10.1f\n%!" copies (copies * base_rows) dt
        rows_per_s mb;
      (* clean up *)
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    [ 1; 4; 16; 64 ]

(* --- Emit: templated tile splicing vs per-cell re-rendering ---------------- *)

let dir_bytes dir =
  Array.fold_left
    (fun acc f -> acc + (Unix.stat (Filename.concat dir f)).Unix.st_size)
    0 (Sys.readdir dir)

let emit () =
  header
    "Emit: CSV scale-out throughput, the templated splicer (render each base \
     row once, memcpy fragments + itoa shifted keys per tile) vs the per-cell \
     reference renderer.  Same output bytes.  Expected shape: templated \
     rows/s a multiple of naive, the gap widening with the copy count; MB/s \
     approaching memory-copy bound.";
  let domain_counts = List.sort_uniq compare [ 1; Par.default_domains () ] in
  List.iter
    (fun wl ->
      let workload, ref_db, prod_env = make_workload wl in
      let r = run_mirage workload ref_db prod_env in
      let db = r.Driver.r_db in
      let base_rows =
        List.fold_left
          (fun acc (_, n) -> acc + n)
          0
          (Mirage_core.Scale_out.scaled_rows db ~copies:1)
      in
      pf "\n%s\n%-8s %8s %12s %10s %10s %12s %10s %10s %10s\n%!" wl.wl_name
        "copies" "domains" "rows" "naive(s)" "tmpl(s)" "tmpl-rows/s" "MB/s"
        "speedup" "peak(MB)";
      List.iter
        (fun domains ->
          let pool = Par.get ~domains () in
          List.iter
            (fun copies ->
              let run name writer =
                let dir = Filename.temp_file "mirage_emit" "" in
                Sys.remove dir;
                let (dt, bytes), peak =
                  Mirage_util.Mem.measure (fun () ->
                      let t0 = Unix.gettimeofday () in
                      writer ~pool ~db ~copies ~dir ();
                      (Unix.gettimeofday () -. t0, dir_bytes dir))
                in
                Array.iter
                  (fun f -> Sys.remove (Filename.concat dir f))
                  (Sys.readdir dir);
                Sys.rmdir dir;
                let rows_per_s = float_of_int (copies * base_rows) /. dt in
                let mb_per_s = float_of_int bytes /. 1_048_576.0 /. dt in
                Bench_json.record ~experiment:"emit" ~workload:wl.wl_name
                  ~label:(Printf.sprintf "copies=%d,domains=%d,%s" copies
                            domains name)
                  ~domains:(Par.size pool) ~seconds:dt ~rows_per_s
                  ~peak_mb:(float_of_int peak /. 1_048_576.0) ~mb_per_s ();
                (dt, rows_per_s, mb_per_s, peak)
              in
              let naive_dt, _, _, _ =
                run "naive" (fun ~pool ->
                    Mirage_core.Scale_out.Reference.to_csv_dir ~pool)
              in
              let tmpl_dt, tmpl_rps, tmpl_mbs, peak =
                run "templated" (fun ~pool ->
                    Mirage_core.Scale_out.to_csv_dir ~pool)
              in
              pf "%-8d %8d %12d %10.3f %10.3f %12.0f %10.1f %9.2fx %10.1f\n%!"
                copies domains (copies * base_rows) naive_dt tmpl_dt tmpl_rps
                tmpl_mbs (naive_dt /. tmpl_dt)
                (float_of_int peak /. 1_048_576.0))
            [ 1; 16; 64 ])
        domain_counts)
    [ List.nth workloads 0; List.nth workloads 1 ]

(* --- Chunked: crash-safe sink export --------------------------------------- *)

let chunked () =
  header
    "Chunked: crash-safe chunked CSV export (sink shards + atomic renames + \
     manifest checkpoint per shard) vs the monolithic writer, same database, \
     same bytes.  Output is asserted byte-identical.  Expected shape: \
     throughput within noise of monolithic; peak memory bounded by the tile \
     window, flat in the chunk size.";
  let wl = List.nth workloads 0 in
  let workload, ref_db, prod_env = make_workload wl in
  let r = run_mirage workload ref_db prod_env in
  let db = r.Driver.r_db in
  let copies = 8 in
  let base_rows =
    List.fold_left
      (fun acc (_, n) -> acc + n)
      0
      (Mirage_core.Scale_out.scaled_rows db ~copies:1)
  in
  let tables =
    List.map
      (fun (t : Mirage_sql.Schema.table) -> t.Mirage_sql.Schema.tname)
      (Mirage_sql.Schema.tables (Mirage_engine.Db.schema db))
  in
  let largest =
    List.fold_left (fun m t -> max m (Mirage_engine.Db.row_count db t)) 1 tables
  in
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let rm_dir dir =
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  in
  let temp_dir () =
    let d = Filename.temp_file "mirage_chunk" "" in
    Sys.remove d;
    d
  in
  let pool = Par.get () in
  let mono = temp_dir () in
  Mirage_core.Scale_out.to_csv_dir ~pool ~db ~copies ~dir:mono ();
  let out_mb = csv_mb ~copies db in
  pf "%-12s %8s %10s %12s %10s %10s %10s\n%!" "chunk-rows" "shards" "write(s)"
    "rows/s" "MB/s" "peak(MB)" "identical";
  List.iter
    (fun chunk_rows ->
      let dir = temp_dir () in
      let (dt, rep), peak =
        Mirage_util.Mem.measure (fun () ->
            let t0 = Unix.gettimeofday () in
            let rep =
              Mirage_core.Scale_out.to_csv_chunked ~pool ~db ~copies
                ~chunk_rows ~dir
                ~run_id:(Printf.sprintf "bench-chunk%d" chunk_rows)
                ()
            in
            (Unix.gettimeofday () -. t0, rep))
      in
      (* the whole point of the chunked path: same bytes as the monolithic
         writer, so the bench hard-fails on any divergence *)
      let identical =
        List.for_all
          (fun t ->
            let rec cat k acc =
              let p = Filename.concat dir (Printf.sprintf "%s.csv.%d" t k) in
              if Sys.file_exists p then cat (k + 1) (acc ^ read_file p) else acc
            in
            String.equal (read_file (Filename.concat mono (t ^ ".csv"))) (cat 0 ""))
          tables
      in
      if not identical then
        failwith
          (Printf.sprintf "chunked: output diverged at chunk_rows=%d" chunk_rows);
      let rows_per_s = float_of_int (copies * base_rows) /. dt in
      Bench_json.record ~experiment:"chunked" ~workload:wl.wl_name
        ~label:(Printf.sprintf "chunk=%d" chunk_rows)
        ~domains:(Par.size pool) ~seconds:dt ~rows_per_s
        ~peak_mb:(float_of_int peak /. 1_048_576.0)
        ~mb_per_s:(out_mb /. dt) ~chunk_rows ();
      pf "%-12d %8d %10.3f %12.0f %10.1f %10.1f %10s\n%!" chunk_rows
        rep.Mirage_core.Scale_out.cr_shards dt rows_per_s (out_mb /. dt)
        (float_of_int peak /. 1_048_576.0)
        (if identical then "yes" else "NO");
      rm_dir dir)
    [ max 1 (largest / 4); largest; largest * copies ];
  rm_dir mono

(* --- Out-of-core: big columns + domain-owned compressed emit --------------- *)

let outofcore () =
  header
    "Out-of-core: TPC-H generated at 1x and 16x the bench SF with a fixed \
     absolute big-column threshold (sized from the 1x reference database, so \
     table-sized storage spills to Bigarray memory off the OCaml heap in \
     both runs) and a fixed absolute batch size, under a hard 256 MB heap \
     budget — the run aborts rather than quietly paging.  A 64x run then \
     generates STREAMED (a chunk plan fixed up front; every row scan \
     proceeds chunk-at-a-time) under the same budget.  Expected shape: \
     peak(MB) flat (16x <= 1.2x of 1x and 64x <= 1.2x of 16x, both gated) \
     while rows grow 64x; streamed output is asserted byte-identical to the \
     monolithic path at the common 1x SF.  The 16x database is then \
     exported gzip-compressed through the single-drain chunked writer vs \
     the domain-owned sharded writer: compression rides the payload path, \
     so the drain serializes it while sharded writers compress concurrently \
     — sharded MB/s >= 1.5x drain at domains=4 is gated on hosts with >= 4 \
     cores.";
  let wl = List.nth workloads 1 (* tpch *) in
  let cores = Domain.recommended_domain_count () in
  let base_sf = wl.wl_sf *. bench_sf_scale in
  (* fixed absolute spill threshold across both scales: half the 1x run's
     largest table, floored against degenerate tiny-CI sizes — the 1x run
     already keeps its big tables off-heap, so the 16x run grows the mmap
     side, not the heap *)
  let saved_thr = Mirage_engine.Col.big_rows () in
  (* a fixed-heap deployment pays GC time to keep the heap near the live
     set: default space_overhead (120) lets the major heap balloon to ~2x
     live between stage samples, which would measure allocation churn (16x
     more transient work at 16x SF) instead of the working set this
     experiment is about.  40 keeps heap tracking live within ~1.4x. *)
  let saved_gc = Gc.get () in
  let budget =
    { Mirage_util.Budget.no_limits with Mirage_util.Budget.max_heap_mb = Some 256 }
  in
  (* the batch is the one deliberately heap-resident structure in keygen
     (partition cons-lists, the per-batch value buffer): fix it at an
     absolute size well under the 16x row count, so "batch-bounded" does not
     quietly mean "table-sized" as SF grows *)
  let config = { bench_config with Driver.budget; batch_size = 65_536 } in
  let gen ?(config = config) label sf =
    Gc.compact ();
    let workload, ref_db, prod_env = make_workload ~sf_override:sf ~scale:false wl in
    let r = run_mirage ~config workload ref_db prod_env in
    let secs = gen_seconds r in
    let rows = db_rows r.Driver.r_db in
    Bench_json.record ~experiment:"outofcore" ~workload:wl.wl_name ~label
      ~domains:1 ~seconds:secs
      ~rows_per_s:(float_of_int rows /. secs)
      ~peak_mb:(peak_mb r) ~bytes_per_row:(bytes_per_row r)
      ~mb_per_s:(csv_mb_per_s r.Driver.r_db secs)
      ~chunk_rows:(Option.value ~default:0 config.Driver.chunk_rows)
      ~gen_peak_mb:(peak_mb r) ~gen:r ();
    pf "%-10s %8.3f %10d %10.3f %10.1f %12.1f\n%!" label sf rows secs
      (peak_mb r) (bytes_per_row r);
    r
  in
  Fun.protect
    ~finally:(fun () ->
      Mirage_engine.Col.set_big_rows saved_thr;
      Gc.set saved_gc)
    (fun () ->
      Gc.set { saved_gc with Gc.space_overhead = 40 };
      (* size the threshold from the 1x reference database (generated row
         counts match it), then generate both scales under the same one *)
      let _, ref_db1, _ = make_workload ~sf_override:base_sf ~scale:false wl in
      let largest1 =
        List.fold_left
          (fun m (t : Mirage_sql.Schema.table) ->
            max m (Mirage_engine.Db.row_count ref_db1 t.Mirage_sql.Schema.tname))
          1
          (Mirage_sql.Schema.tables (Mirage_engine.Db.schema ref_db1))
      in
      Mirage_engine.Col.set_big_rows (max 1024 (largest1 / 2));
      pf "big-column threshold: %d rows; heap budget 256 MB; host cores %d\n"
        (Mirage_engine.Col.big_rows ()) cores;
      pf "%-10s %8s %10s %10s %10s %12s\n%!" "run" "sf" "rows" "gen(s)"
        "peak(MB)" "heap(B/row)";
      let r1 = gen "gen-1x" base_sf in
      let r16 = gen "gen-16x" (base_sf *. 16.0) in
      (* 64x generates streamed: a chunk plan several chunks deep for the
         fact tables at this scale, so the O(chunk + dimensions) heap
         contract — not just the off-heap spill — is what the gate's
         peak64 <= 1.2x peak16 bar measures *)
      let stream_chunk = max 1024 (largest1 * 8) in
      let streamed_config = { config with Driver.chunk_rows = Some stream_chunk } in
      ignore (gen ~config:streamed_config "gen-64x" (base_sf *. 64.0));
      (* --- compressed emit: single drain vs domain-owned shards ---------- *)
      let db = r16.Driver.r_db in
      let copies = 8 in
      let out_mb = csv_mb ~copies db in
      let largest =
        List.fold_left
          (fun m (t : Mirage_sql.Schema.table) ->
            max m (Mirage_engine.Db.row_count db t.Mirage_sql.Schema.tname))
          1
          (Mirage_sql.Schema.tables (Mirage_engine.Db.schema db))
      in
      (* several shards per table, so the sharded writer has work to spread *)
      let chunk_rows = max 1 (largest / 2) in
      let temp_dir () =
        let d = Filename.temp_file "mirage_outofcore" "" in
        Sys.remove d;
        d
      in
      let read_file path =
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let rm_dir dir =
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      in
      let cat_dir dir =
        (* concatenate every shard in directory-name order per table — the
           manifest order, since shard k sorts before k+1 *)
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> f <> "MANIFEST.json")
        |> List.sort compare
        |> List.map (fun f -> read_file (Filename.concat dir f))
        |> String.concat ""
      in
      (* streamed-vs-monolithic byte identity at the common 1x SF: the same
         workload regenerated under a chunk plan (a non-dividing chunk size,
         so the last chunk is ragged) must export the same CSV bytes *)
      let r1s =
        gen
          ~config:
            { config with Driver.chunk_rows = Some (max 1 (largest1 / 3)) }
          "gen-1x-stream" base_sf
      in
      let dir_a = temp_dir () and dir_b = temp_dir () in
      let id_pool = Par.get () in
      Mirage_core.Scale_out.to_csv_dir ~pool:id_pool ~db:r1.Driver.r_db
        ~copies:1 ~dir:dir_a ();
      Mirage_core.Scale_out.to_csv_dir ~pool:id_pool ~db:r1s.Driver.r_db
        ~copies:1 ~dir:dir_b ();
      let identical =
        List.for_all
          (fun (t : Mirage_sql.Schema.table) ->
            let f = t.Mirage_sql.Schema.tname ^ ".csv" in
            String.equal
              (read_file (Filename.concat dir_a f))
              (read_file (Filename.concat dir_b f)))
          (Mirage_sql.Schema.tables (Mirage_engine.Db.schema r1.Driver.r_db))
      in
      rm_dir dir_a;
      rm_dir dir_b;
      if not identical then
        failwith "outofcore: streamed generation diverged from monolithic at 1x";
      pf "streamed generation byte-identical to monolithic at 1x: yes\n%!";
      pf "\ncompressed emit of the 16x database (copies=%d, %.1f raw MB):\n"
        copies out_mb;
      pf "%-10s %8s %10s %10s %10s\n%!" "writer" "domains" "write(s)" "MB/s"
        "identical";
      let reference = ref "" in
      List.iter
        (fun domains ->
          let pool = Par.get ~domains () in
          let run label sharded =
            let export =
              if sharded then Mirage_core.Scale_out.to_csv_sharded
              else Mirage_core.Scale_out.to_csv_chunked
            in
            let dir = temp_dir () in
            let t0 = Unix.gettimeofday () in
            let (_ : Mirage_core.Scale_out.chunk_report) =
              export ~pool ~compress:true ~db ~copies ~chunk_rows ~dir
                ~run_id:(Printf.sprintf "outofcore-%s-d%d" label domains)
                ()
            in
            let dt = Unix.gettimeofday () -. t0 in
            let bytes = cat_dir dir in
            rm_dir dir;
            if !reference = "" then reference := bytes;
            (* both writers, at every domain count, must produce the same
               compressed bytes — shard layout and encoder are deterministic *)
            let identical = String.equal bytes !reference in
            if not identical then
              failwith
                (Printf.sprintf "outofcore: %s output diverged at domains=%d"
                   label domains);
            Bench_json.record ~experiment:"outofcore" ~workload:wl.wl_name
              ~label:(Printf.sprintf "emit-%s-d%d" label domains) ~domains
              ~seconds:dt ~rows_per_s:0.0 ~peak_mb:0.0
              ~mb_per_s:(out_mb /. dt) ~chunk_rows ();
            pf "%-10s %8d %10.3f %10.1f %10s\n%!" label domains dt
              (out_mb /. dt)
              (if identical then "yes" else "NO")
          in
          run "drain" false;
          run "sharded" true)
        [ 1; 4 ])

(* --- Ablation: contribution of each design choice ------------------------- *)

let ablate () =
  header
    "Ablation: each row disables one design choice (DESIGN.md) and reports \
     accuracy and key-generation cost on TPC-H (sf 0.2) and TPC-DS (sf 0.2).";
  let variants =
    [
      ("all-on", bench_config);
      ("no-acc-repair", { bench_config with Driver.acc_repair = false });
      ("no-lp-guide", { bench_config with Driver.lp_guide = false; cp_max_nodes = 30_000 });
      ("no-jdc-sparsify", { bench_config with Driver.sparsify = false });
      ("no-capacity-repair", { bench_config with Driver.capacity_repair = false });
      ("no-guided-placement", { bench_config with Driver.guided_placement = false });
    ]
  in
  List.iter
    (fun wl ->
      let workload, ref_db, prod_env = make_workload wl in
      pf "\n%s\n%-22s %8s %10s %10s %12s %10s\n%!" wl.wl_name "variant" "exact"
        "mean-err" "worst" "cp-nodes" "gen(s)";
      List.iter
        (fun (name, config) ->
          match Driver.generate ~config workload ~ref_db ~prod_env with
          | Error d ->
              pf "%-22s failed: %s\n%!" name (Mirage_core.Diag.to_string d)
          | Ok r ->
              let errs = Driver.measure_errors r in
              let rels =
                List.map
                  (fun (e : Error.query_error) -> e.Error.qe_relative)
                  errs
              in
              let exact = List.length (List.filter (fun e -> e = 0.0) rels) in
              pf "%-22s %5d/%-2d %10.5f %10.5f %12d %10.3f\n%!" name exact
                (List.length rels) (mean rels)
                (List.fold_left max 0.0 rels)
                r.Driver.r_timings.Driver.cp_nodes (gen_seconds r))
        variants)
    [ List.nth workloads 1; List.nth workloads 2 ]

(* --- Speedup: domain-parallel generation --------------------------------- *)

(* digest of the full database content (typed columns, so representation
   differences would show too): the speedup sweep hard-fails if any domain
   count produces different bytes *)
let db_digest db =
  let b = Buffer.create 256 in
  List.iter
    (fun (tbl : Mirage_sql.Schema.table) ->
      let t = tbl.Mirage_sql.Schema.tname in
      List.iter
        (fun c ->
          Buffer.add_string b
            (Digest.string (Marshal.to_string (Mirage_engine.Db.col db t c) [])))
        (Mirage_sql.Schema.column_names tbl))
    (Mirage_sql.Schema.tables (Mirage_engine.Db.schema db));
  Digest.to_hex (Digest.string (Buffer.contents b))

let speedup () =
  header
    "Speedup: end-to-end generation with a growing domain pool.  The \
     database is bit-identical for every domain count (asserted); only \
     wall-clock changes.  Workloads run at a scaled-up SF where parallel \
     work dominates dispatch (the stock bench workloads finish in \
     milliseconds, which only measures region overhead); a warm-up run \
     fills the shared CP solve cache and the resident pools so every \
     measured run sees identical warm state.  Expected shape: gen(s) \
     shrinks towards cpu(s)/domains as domains grow (flat on a single-core \
     machine — the gate in dev/bench_gate only enforces scaling the host \
     can physically express).";
  let cores = Domain.recommended_domain_count () in
  (* MIRAGE_SPEEDUP_SF scales the speedup experiment only — independent of
     MIRAGE_BENCH_SF, so the CI smoke knob cannot shrink these runs back
     into dispatch-overhead noise *)
  let sp_scale =
    match Sys.getenv_opt "MIRAGE_SPEEDUP_SF" with
    | Some s -> (
        match float_of_string_opt s with Some f when f > 0.0 -> f | _ -> 1.0)
    | None -> 1.0
  in
  (* per-workload absolute multipliers over the stock bench SF, sized so a
     domains=1 run takes O(1-10 s): enough work for scaling to be
     measurable, small enough for CI.  (tpcds generation is cheap once the
     shared solve cache is warm and batching is wide, so it needs as much
     scaling as the row-bound workloads.) *)
  let mults = [ ("ssb", 64.0); ("tpch", 16.0); ("tpcds", 32.0) ] in
  pf "host cores: %d (speedup sf scale %.2f)\n%!" cores sp_scale;
  foreach_workload (fun wl ->
      let sf = wl.wl_sf *. List.assoc wl.wl_name mults *. sp_scale in
      let workload, ref_db, prod_env =
        make_workload ~sf_override:sf ~scale:false wl
      in
      (* one CP solve cache shared across the warm-up and every measured
         domain count: replay-identical, and it removes the cold-cache
         asymmetry that would otherwise flatter whichever run went first *)
      let cache = Mirage_core.Solve_cache.create () in
      let config d =
        { bench_config with Driver.domains = d; cache = Some cache }
      in
      ignore (run_mirage ~config:(config 1) workload ref_db prod_env);
      pf "\n%s (sf %.2f)\n%-8s %10s %10s %10s %10s %10s\n%!" wl.wl_name sf
        "domains" "gen(s)" "cpu(s)" "speedup" "peak(MB)" "identical";
      let base = ref nan and digest1 = ref "" in
      List.iter
        (fun d ->
          (* start every width from a compacted heap: Driver's peak counter
             reads total heap words, so without this each run inherits the
             previous width's heap growth and the peak ratios the gate
             checks (d2 <= 1.3x d1) would compare process history, not
             per-run working sets *)
          Gc.compact ();
          let r = run_mirage ~config:(config d) workload ref_db prod_env in
          let t = r.Driver.r_timings in
          let secs = gen_seconds r in
          let dg = db_digest r.Driver.r_db in
          if Float.is_nan !base then begin
            base := secs;
            digest1 := dg
          end;
          if dg <> !digest1 then
            failwith
              (Printf.sprintf
                 "speedup: %s output diverged at domains=%d (digest %s vs %s)"
                 wl.wl_name d dg !digest1);
          let sp = !base /. secs in
          Bench_json.record ~experiment:"speedup" ~workload:wl.wl_name
            ~label:(Printf.sprintf "domains=%d" d)
            ~domains:t.Driver.domains_used ~seconds:secs
            ~rows_per_s:(float_of_int (db_rows r.Driver.r_db) /. secs)
            ~peak_mb:(peak_mb r) ~bytes_per_row:(bytes_per_row r)
            ~speedup_vs_1:sp ~mb_per_s:(csv_mb_per_s r.Driver.r_db secs)
            ~cp_cache_hits:t.Driver.cp_cache_hits ~gen_peak_mb:(peak_mb r)
            ~gen:r ();
          pf "%-8d %10.3f %10.3f %10.2f %10.1f %10s\n%!" d secs t.Driver.t_cpu
            sp (peak_mb r)
            (if dg = !digest1 then "yes" else "NO"))
        [ 1; 2; 4 ];
      let h = Mirage_core.Solve_cache.hits cache
      and m = Mirage_core.Solve_cache.misses cache in
      pf "%s solve cache across runs: %d hits / %d solves (%.0f%%)\n%!"
        wl.wl_name h (h + m)
        (100.0 *. float_of_int h /. float_of_int (max 1 (h + m))))

(* --- Sched: barrier vs overlapped pipeline scheduling ---------------------- *)

let sched () =
  header
    "Sched: end-to-end generation under the barrier schedule (the legacy \
     one-FK-edge-at-a-time walk) vs the dependency-aware overlap schedule \
     (independent edges concurrent, CP solve-ahead inside each constrained \
     edge) on a 4-domain pool, at the speedup experiment's scaled-up SF \
     with the same warm shared state.  The database is bit-identical \
     between schedules (asserted).  Expected shape: overlap >= 1.25x wall \
     time on multi-core hosts with peak memory within 1.3x of barrier; \
     ~1.0x on a single-core host, where the domains time-share (the gate \
     in dev/bench_gate skips hosts with < 4 cores).";
  let cores = Domain.recommended_domain_count () in
  let sp_scale =
    match Sys.getenv_opt "MIRAGE_SPEEDUP_SF" with
    | Some s -> (
        match float_of_string_opt s with Some f when f > 0.0 -> f | _ -> 1.0)
    | None -> 1.0
  in
  let mults = [ ("ssb", 64.0); ("tpch", 16.0); ("tpcds", 32.0) ] in
  pf "host cores: %d (speedup sf scale %.2f)\n%!" cores sp_scale;
  foreach_workload (fun wl ->
      let sf = wl.wl_sf *. List.assoc wl.wl_name mults *. sp_scale in
      let workload, ref_db, prod_env =
        make_workload ~sf_override:sf ~scale:false wl
      in
      (* one CP solve cache shared across the warm-up and both schedules:
         replay-identical, and it removes the cold-cache asymmetry that
         would otherwise flatter whichever schedule went second *)
      let cache = Mirage_core.Solve_cache.create () in
      let config schedule =
        { bench_config with Driver.domains = 4; schedule; cache = Some cache }
      in
      ignore (run_mirage ~config:(config `Barrier) workload ref_db prod_env);
      pf "\n%s (sf %.2f, domains=4)\n%-10s %10s %10s %8s %10s %10s\n%!"
        wl.wl_name sf "schedule" "gen(s)" "cpu(s)" "util" "peak(MB)"
        "identical";
      let base = ref nan and digest_b = ref "" in
      List.iter
        (fun (label, schedule) ->
          (* compacted heap per run, as in speedup: the peak counter must
             price this run's working set, not process history *)
          Gc.compact ();
          let r = run_mirage ~config:(config schedule) workload ref_db prod_env in
          let t = r.Driver.r_timings in
          let secs = gen_seconds r in
          let dg = db_digest r.Driver.r_db in
          if Float.is_nan !base then begin
            base := secs;
            digest_b := dg
          end;
          if dg <> !digest_b then
            failwith
              (Printf.sprintf
                 "sched: %s output diverged under %s (digest %s vs %s)"
                 wl.wl_name label dg !digest_b);
          let sp = !base /. secs in
          Bench_json.record ~experiment:"sched" ~workload:wl.wl_name ~label
            ~domains:t.Driver.domains_used ~seconds:secs
            ~rows_per_s:(float_of_int (db_rows r.Driver.r_db) /. secs)
            ~peak_mb:(peak_mb r) ~bytes_per_row:(bytes_per_row r)
            ~speedup_vs_1:sp ~mb_per_s:(csv_mb_per_s r.Driver.r_db secs)
            ~cp_cache_hits:t.Driver.cp_cache_hits ~gen_peak_mb:(peak_mb r)
            ~gen:r ();
          pf "%-10s %10.3f %10.3f %8.2f %10.1f %10s\n%!" label secs
            t.Driver.t_cpu
            (if secs > 0.0 then t.Driver.t_cpu /. secs else 0.0)
            (peak_mb r)
            (if dg = !digest_b then "yes" else "NO"))
        [ ("barrier", `Barrier); ("overlap", `Overlap) ])

(* --- Replay: verification throughput and resident database size ----------- *)

let replay () =
  header
    "Replay: full-workload replay (every query re-executed on the generated \
     database for the zero-error cardinality checks) and the resident size \
     of the database itself.  rows/s counts generated rows covered per \
     wall-second of replay; db(B/row) is live heap delta per generated row \
     after a compaction.";
  pf "%-8s %10s %12s %14s %12s %12s\n%!" "workload" "queries" "replay(s)"
    "rows/s" "db(B/row)" "exact";
  foreach_workload (fun wl ->
      let workload, ref_db, prod_env = make_workload wl in
      let live0 = live_bytes_now () in
      let r = run_mirage workload ref_db prod_env in
      let rows = db_rows r.Driver.r_db in
      let live1 = live_bytes_now () in
      (* keep the generation inputs live across both measurements, so the
         delta prices only what generation retained (db + env + extraction) *)
      ignore (Sys.opaque_identity (workload, ref_db, prod_env));
      let db_bytes_per_row =
        float_of_int (live1 - live0) /. float_of_int (max 1 rows)
      in
      let aqts = r.Driver.r_extraction.Extract.aqts in
      (* warm caches, then time the replay loop the error measurement runs *)
      let warm = Error.measure ~aqts ~db:r.Driver.r_db ~env:r.Driver.r_env in
      let exact =
        List.length
          (List.filter
             (fun (e : Error.query_error) -> e.Error.qe_relative = 0.0)
             warm)
      in
      let repeat = 5 in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to repeat do
        ignore (Error.measure ~aqts ~db:r.Driver.r_db ~env:r.Driver.r_env)
      done;
      let dt = (Unix.gettimeofday () -. t0) /. float_of_int repeat in
      let rows_per_s = float_of_int rows /. dt in
      Bench_json.record ~experiment:"replay" ~workload:wl.wl_name
        ~label:"all-queries" ~domains:1 ~seconds:dt ~rows_per_s
        ~peak_mb:(peak_mb r) ~bytes_per_row:db_bytes_per_row
        ~mb_per_s:(csv_mb_per_s r.Driver.r_db dt) ~gen_peak_mb:(peak_mb r)
        ~gen:r ();
      pf "%-8s %10d %12.4f %14.0f %12.1f %9d/%d\n%!" wl.wl_name
        (List.length aqts) dt rows_per_s db_bytes_per_row exact
        (List.length warm))

(* --- CP kernel: event-driven vs naive-fixpoint propagation ---------------- *)

(* Reference implementation of the pre-kernel solver: full constraint sweep
   to fixpoint at every DFS node, domain arrays copied per branch.  Kept
   verbatim (minus the LP guide) so the propagation-count comparison below
   measures exactly what the watch-list kernel eliminated.  A "propagation"
   is one execution of one constraint's propagator — one sweep visit here,
   one work-queue pop in the kernel. *)
module Naive_ref = struct
  type constr =
    | Linear of { terms : (int * int) list; eq : bool; rhs : int }
    | Ge of int * int
    | Imply_pos of int * int
  [@@warning "-37"]
  (* Ge / Imply_pos match the solver's constraint forms but the
     transportation systems below only post equalities *)

  exception Fail

  let props = ref 0

  let propagate constrs lo hi =
    let changed = ref true in
    let tighten_lo v x =
      if x > lo.(v) then begin
        lo.(v) <- x;
        if lo.(v) > hi.(v) then raise Fail;
        changed := true
      end
    in
    let tighten_hi v x =
      if x < hi.(v) then begin
        hi.(v) <- x;
        if lo.(v) > hi.(v) then raise Fail;
        changed := true
      end
    in
    let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
    let cdiv a b = if a >= 0 then (a + b - 1) / b else -((-a) / b) in
    let prop_linear terms eq rhs =
      let sum_lo = ref 0 and sum_hi = ref 0 in
      List.iter
        (fun (a, v) ->
          if a >= 0 then begin
            sum_lo := !sum_lo + (a * lo.(v));
            sum_hi := !sum_hi + (a * hi.(v))
          end
          else begin
            sum_lo := !sum_lo + (a * hi.(v));
            sum_hi := !sum_hi + (a * lo.(v))
          end)
        terms;
      if !sum_lo > rhs then raise Fail;
      if eq && !sum_hi < rhs then raise Fail;
      List.iter
        (fun (a, v) ->
          if a <> 0 then begin
            let term_lo = if a >= 0 then a * lo.(v) else a * hi.(v) in
            let term_hi = if a >= 0 then a * hi.(v) else a * lo.(v) in
            let ub = rhs - (!sum_lo - term_lo) in
            if a > 0 then tighten_hi v (fdiv ub a)
            else tighten_lo v (cdiv (-ub) (-a));
            if eq then begin
              let lb = rhs - (!sum_hi - term_hi) in
              if a > 0 then tighten_lo v (cdiv lb a)
              else tighten_hi v (fdiv (-lb) (-a))
            end
          end)
        terms
    in
    while !changed do
      changed := false;
      List.iter
        (fun c ->
          incr props;
          match c with
          | Linear { terms; eq; rhs } -> prop_linear terms eq rhs
          | Ge (x, y) ->
              tighten_lo x lo.(y);
              tighten_hi y hi.(x)
          | Imply_pos (x, y) ->
              if hi.(y) = 0 then tighten_hi x 0;
              if lo.(x) > 0 then tighten_lo y 1)
        constrs
    done

  type outcome = Sat of int array | Unsat | Unknown

  (* outcome, nodes explored, props accumulated *)
  let solve ~max_nodes constrs lo0 hi0 =
    props := 0;
    let n = Array.length lo0 in
    let nodes = ref 0 in
    let exception Found of int array in
    let exception Out_of_nodes in
    let rec search lo hi =
      incr nodes;
      if !nodes > max_nodes then raise Out_of_nodes;
      propagate constrs lo hi;
      let best = ref (-1) and best_width = ref 0 in
      for v = 0 to n - 1 do
        let w = hi.(v) - lo.(v) in
        if w > !best_width then begin
          best := v;
          best_width := w
        end
      done;
      if !best = -1 then raise (Found (Array.copy lo))
      else begin
        let v = !best in
        let g = lo.(v) in
        let try_range l h =
          if l <= h then begin
            try
              let lo' = Array.copy lo and hi' = Array.copy hi in
              lo'.(v) <- l;
              hi'.(v) <- h;
              search lo' hi'
            with Fail -> ()
          end
        in
        let last_range l h =
          if l <= h then begin
            let lo' = Array.copy lo and hi' = Array.copy hi in
            lo'.(v) <- l;
            hi'.(v) <- h;
            search lo' hi'
          end
          else raise Fail
        in
        try_range g g;
        last_range (g + 1) hi.(v)
      end
    in
    match search (Array.copy lo0) (Array.copy hi0) with
    | () -> (Unsat, !nodes, !props)
    | exception Fail -> (Unsat, !nodes, !props)
    | exception Out_of_nodes -> (Unknown, !nodes, !props)
    | exception Found a -> (Sat a, !nodes, !props)
end

(* A transportation-like system of the key-generator shape, built from a
   known feasible point: [nj] cover equalities (one per T-partition column),
   [ni] row sums and [groups] overlapping prefix group sums. *)
let make_cp_system ~ni ~nj ~groups =
  let rng = Mirage_util.Rng.create (ni + (31 * nj) + (977 * groups)) in
  (* sparse feasible point with small values: keeps the zero-first DFS from
     thrashing, so the sweep measures propagation cost, not search blowup *)
  let point =
    Array.init (ni * nj) (fun _ ->
        if Mirage_util.Rng.int rng 3 = 0 then 1 + Mirage_util.Rng.int rng 3
        else 0)
  in
  (* domains wide enough that any one variable can absorb a whole column
     residual — search walks straight to the point's column sums while the
     capacity rows and group budgets below still fire on every change *)
  let col_sum j =
    let s = ref 0 in
    for i = 0 to ni - 1 do
      s := !s + point.((i * nj) + j)
    done;
    !s
  in
  let hi = ref 1 in
  for j = 0 to nj - 1 do
    if col_sum j + 1 > !hi then hi := col_sum j + 1
  done;
  let hi = !hi in
  let m = Mirage_cp.Cp.create () in
  let xs = Array.init (ni * nj) (fun _ -> Mirage_cp.Cp.var m ~lo:0 ~hi) in
  let naive = ref [] in
  let post_eq terms rhs =
    Mirage_cp.Cp.linear_eq m (List.map (fun (a, q) -> (a, xs.(q))) terms) rhs;
    naive := Naive_ref.Linear { terms; eq = true; rhs } :: !naive
  in
  let post_le terms rhs =
    Mirage_cp.Cp.linear_le m (List.map (fun (a, q) -> (a, xs.(q))) terms) rhs;
    naive := Naive_ref.Linear { terms; eq = false; rhs } :: !naive
  in
  let sum_of terms = List.fold_left (fun acc (_, q) -> acc + point.(q)) 0 terms in
  (* cover equalities: one per T-partition column (Eq. 3's exact row shares) *)
  for j = 0 to nj - 1 do
    let terms = List.init ni (fun i -> (1, (i * nj) + j)) in
    post_eq terms (sum_of terms)
  done;
  (* pool-capacity rows: each S-partition supplies at most its pool.  Slack
     covers the worst case of one full column residual landing in the row, so
     the rows prune hi bounds without ever blocking the straight-line walk. *)
  for i = 0 to ni - 1 do
    let terms = List.init nj (fun j -> (1, (i * nj) + j)) in
    post_le terms (sum_of terms + (nj * hi))
  done;
  (* JCC/JDC-style group budgets over disjoint contiguous blocks of the
     flattened partition grid *)
  let block = max 2 (ni * nj / max 1 groups) in
  for g = 0 to groups - 1 do
    let start = g * block in
    if start + block <= ni * nj then begin
      let terms = List.init block (fun q -> (1, start + q)) in
      post_le terms (sum_of terms + (block * hi))
    end
  done;
  let lo0 = Array.make (ni * nj) 0 and hi0 = Array.make (ni * nj) hi in
  (m, List.rev !naive, lo0, hi0)

let cpsolve () =
  header
    "CP kernel: event-driven watch-list propagation vs the naive full-sweep \
     fixpoint, on key-generator-shaped systems built from feasible points \
     (LP guide off in both — pure propagation + DFS).  Expected shape: \
     identical node counts (same search tree), propagations lower by the \
     constraint count's order, ratio growing with system size.";
  let sweep =
    [ (2, 4, 2); (4, 8, 4); (6, 12, 8); (8, 16, 12); (10, 24, 16) ]
  in
  pf "%-18s %6s %8s %10s %12s %12s %8s %12s %10s %10s\n%!" "system" "vars"
    "constrs" "nodes" "props" "naive-props" "ratio" "nodes/s" "time(us)"
    "naive(us)";
  List.iter
    (fun (ni, nj, groups) ->
      let m, naive_constrs, lo0, hi0 = make_cp_system ~ni ~nj ~groups in
      let max_nodes = 1_000_000 in
      let t0 = Unix.gettimeofday () in
      let outcome, st = Mirage_cp.Cp.solve ~max_nodes ~lp_guide:false m in
      let dt = Unix.gettimeofday () -. t0 in
      let tn0 = Unix.gettimeofday () in
      let naive_sol, naive_nodes, naive_props =
        Naive_ref.solve ~max_nodes naive_constrs lo0 hi0
      in
      let dtn = Unix.gettimeofday () -. tn0 in
      (match (outcome, naive_sol) with
      | Mirage_cp.Cp.Sat _, Naive_ref.Sat _ -> ()
      | o, no ->
          let show = function
            | Mirage_cp.Cp.Sat _ -> "Sat"
            | Unsat -> "Unsat"
            | Unknown -> "Unknown"
          and show_n = function
            | Naive_ref.Sat _ -> "Sat"
            | Unsat -> "Unsat"
            | Unknown -> "Unknown"
          in
          failwith
            (Printf.sprintf
               "cpsolve: kernel %s (%d nodes, %d restarts) vs naive %s (%d nodes)"
               (show o) st.Mirage_cp.Cp.st_nodes st.Mirage_cp.Cp.st_restarts
               (show_n no) naive_nodes));
      if st.Mirage_cp.Cp.st_restarts = 0 && st.Mirage_cp.Cp.st_nodes <> naive_nodes
      then
        failwith
          (Printf.sprintf "cpsolve: search trees diverged (%d vs %d nodes)"
             st.Mirage_cp.Cp.st_nodes naive_nodes);
      let label = Printf.sprintf "ni=%d,nj=%d,groups=%d" ni nj groups in
      let nvars = ni * nj and nconstrs = ni + nj + groups in
      let nodes_per_s = float_of_int st.Mirage_cp.Cp.st_nodes /. dt in
      Bench_json.record ~experiment:"cpsolve" ~workload:"synthetic" ~label
        ~domains:1 ~seconds:dt ~rows_per_s:nodes_per_s ~peak_mb:0.0
        ~cp_nodes:st.Mirage_cp.Cp.st_nodes ~cp_props:st.Mirage_cp.Cp.st_props
        ~cp_naive_props:naive_props ();
      pf "%-18s %6d %8d %10d %12d %12d %7.1fx %12.0f %10.0f %10.0f\n%!" label
        nvars nconstrs st.Mirage_cp.Cp.st_nodes st.Mirage_cp.Cp.st_props
        naive_props
        (float_of_int naive_props /. float_of_int (max 1 st.Mirage_cp.Cp.st_props))
        nodes_per_s (dt *. 1e6) (dtn *. 1e6))
    sweep

(* --- Bechamel micro-benchmarks ------------------------------------------- *)

let micro () =
  header "Bechamel micro-benchmarks of the core primitives";
  let open Bechamel in
  let workload, ref_db, prod_env = make_workload (List.nth workloads 1) in
  let extraction = Extract.run workload ~ref_db ~prod_env in
  let ir = extraction.Extract.ir in
  let schema = workload.Workload.w_schema in
  let dom t c =
    match List.assoc_opt (t, c) ir.Mirage_core.Ir.column_cards with
    | Some d -> max 1 d
    | None -> 1
  in
  let table_rows t = List.assoc t ir.Mirage_core.Ir.table_cards in
  let test_decouple =
    Test.make ~name:"decouple-tpch-sccs"
      (Staged.stage (fun () ->
           ignore
             (Mirage_core.Decouple.run schema ~dom ~table_rows
                ir.Mirage_core.Ir.sccs)))
  in
  let capacities = Array.init 64 (fun i -> 100 + (17 * i mod 220)) in
  let sizes = Array.init 120 (fun i -> 1 + (i * 13 mod 97)) in
  let test_binpack =
    Test.make ~name:"binpack-best-fit-decreasing"
      (Staged.stage (fun () ->
           ignore (Mirage_binpack.Binpack.best_fit_decreasing ~capacities ~sizes)))
  in
  let test_cp =
    Test.make ~name:"cp-solve-transportation"
      (Staged.stage (fun () ->
           let m = Mirage_cp.Cp.create () in
           let xs =
             Array.init 12 (fun i ->
                 Mirage_cp.Cp.var m ~name:(string_of_int i) ~lo:0 ~hi:500)
           in
           Mirage_cp.Cp.linear_eq m (List.init 6 (fun i -> (1, xs.(i)))) 700;
           Mirage_cp.Cp.linear_eq m (List.init 6 (fun i -> (1, xs.(i + 6)))) 900;
           Mirage_cp.Cp.linear_eq m [ (1, xs.(0)); (1, xs.(6)) ] 320;
           Mirage_cp.Cp.linear_le m [ (1, xs.(1)); (1, xs.(7)) ] 260;
           ignore (Mirage_cp.Cp.solve m)))
  in
  let test_lp =
    Test.make ~name:"lp-simplex-20x40"
      (Staged.stage (fun () ->
           let a =
             Array.init 20 (fun r ->
                 Array.init 40 (fun c -> float_of_int ((r + c) mod 5)))
           in
           let b = Array.init 20 (fun r -> float_of_int (50 + r)) in
           let c = Array.make 40 1.0 in
           ignore (Mirage_lp.Lp.solve ~a ~b ~c ())))
  in
  let test_join =
    Test.make ~name:"engine-join-tpch-q3"
      (Staged.stage (fun () ->
           let q = Workload.query workload "tpch_q3" in
           ignore (Mirage_engine.Exec.run ref_db ~env:prod_env q.Workload.q_plan)))
  in
  let test_like =
    Test.make ~name:"like-matcher"
      (Staged.stage (fun () ->
           ignore
             (Mirage_sql.Like.matches ~pattern:"%spec%requ%"
                "the special recurring requests")))
  in
  let tests =
    Test.make_grouped ~name:"mirage"
      [ test_decouple; test_binpack; test_cp; test_lp; test_join; test_like ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      instance raw
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> pf "%-36s %14.1f ns/run\n" name est
      | _ -> pf "%-36s (no estimate)\n" name)
    results;
  pf "%!"

(* --- entry point ---------------------------------------------------------- *)

let experiments =
  [
    ("table1", table1);
    ("fig11a", fun () -> fig11 (List.nth workloads 0));
    ("fig11b", fun () -> fig11 (List.nth workloads 1));
    ("fig11c", fun () -> fig11 (List.nth workloads 2));
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("ablate", ablate);
    ("scaleout", scaleout);
    ("speedup", speedup);
    ("sched", sched);
    ("replay", replay);
    ("micro", micro);
    ("cpsolve", cpsolve);
    ("emit", emit);
    ("chunked", chunked);
    ("outofcore", outofcore);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) experiments
  | names ->
      List.iter
        (fun n ->
          match List.assoc_opt n experiments with
          | Some f -> f ()
          | None ->
              pf "unknown experiment %s; available: %s\n" n
                (String.concat " " (List.map fst experiments)))
        names
