let () =
  let worst = ref 0.0 and failures = ref 0 in
  List.iter
    (fun seed ->
      List.iter
        (fun (name, make, sf) ->
          let workload, ref_db, prod_env = make ~sf ~seed in
          match
            Mirage_core.Driver.generate
              ~config:{ Mirage_core.Driver.default_config with batch_size = 1_000_000; seed }
              workload ~ref_db ~prod_env
          with
          | Error d ->
              incr failures;
              Printf.printf "%s seed=%d FAILED: %s\n%!" name seed
                (Mirage_core.Diag.to_string d)
          | Ok r ->
              let errs = Mirage_core.Driver.measure_errors r in
              let w =
                List.fold_left
                  (fun a (e : Mirage_core.Error.query_error) ->
                    max a e.Mirage_core.Error.qe_relative)
                  0.0 errs
              in
              worst := max !worst w;
              let exact =
                List.length
                  (List.filter
                     (fun (e : Mirage_core.Error.query_error) ->
                       e.Mirage_core.Error.qe_relative = 0.0)
                     errs)
              in
              Printf.printf "%s seed=%d: %d/%d exact, worst %.5f\n%!" name seed exact
                (List.length errs) w)
        [
          ("ssb", Mirage_workloads.Ssb.make, 0.5);
          ("tpch", Mirage_workloads.Tpch.make, 0.1);
          ("tpcds", Mirage_workloads.Tpcds.make, 0.1);
        ])
    [ 1; 2; 3; 11; 99 ];
  Printf.printf "overall: %d failures, worst error %.5f\n" !failures !worst
