module Sink = Mirage_engine.Sink
module Scale_out = Mirage_core.Scale_out
module Budget = Mirage_util.Budget

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let fresh_dir prefix =
  let base = Filename.temp_file prefix "" in
  Sys.remove base;
  Sink.mkdir_p base;
  base

let has_tmp dir =
  Array.exists (fun f -> Filename.check_suffix f ".tmp") (Sys.readdir dir)

(* fault-injection / resume scenarios: each returns true on pass and prints
   one line, feeding the same overall failure counter as the seed sweep *)
let sink_scenarios failures =
  let scenario name ok =
    if ok then Printf.printf "sink %s: ok\n%!" name
    else begin
      incr failures;
      Printf.printf "sink %s: FAILED\n%!" name
    end
  in
  let workload, ref_db, prod_env = Mirage_workloads.Ssb.make ~sf:0.1 ~seed:1 in
  let config =
    { Mirage_core.Driver.default_config with batch_size = 1_000_000; seed = 1 }
  in
  match Mirage_core.Driver.generate ~config workload ~ref_db ~prod_env with
  | Error d ->
      incr failures;
      Printf.printf "sink setup FAILED: %s\n%!" (Mirage_core.Diag.to_string d)
  | Ok r ->
      let db = r.Mirage_core.Driver.r_db in
      let tables =
        List.map
          (fun (t : Mirage_sql.Schema.table) -> t.Mirage_sql.Schema.tname)
          (Mirage_sql.Schema.tables (Mirage_engine.Db.schema db))
      in
      let largest =
        List.fold_left (fun m t -> max m (Mirage_engine.Db.row_count db t)) 1 tables
      in
      let chunk_rows = max 1 (largest / 3) in
      let mono = fresh_dir "rob_mono" in
      Scale_out.to_csv_dir ~db ~copies:2 ~dir:mono ();
      let concat_shards dir t =
        let rec go k acc =
          let p = Filename.concat dir (Printf.sprintf "%s.csv.%d" t k) in
          if Sys.file_exists p then go (k + 1) (acc ^ read_file p) else acc
        in
        go 0 ""
      in
      let identical dir =
        List.for_all
          (fun t ->
            String.equal
              (read_file (Filename.concat mono (t ^ ".csv")))
              (concat_shards dir t))
          tables
      in
      (* crash after 2 committed shards, then resume to completion *)
      let dir = fresh_dir "rob_crash" in
      let crashed =
        let backend =
          Sink.faulty
            { Sink.no_faults with crash_after_shards = Some 2 }
            Sink.os_backend
        in
        match
          Scale_out.to_csv_chunked ~backend ~db ~copies:2 ~chunk_rows ~dir
            ~run_id:"rob" ()
        with
        | _ -> false
        | exception Sink.Injected_crash _ -> true
      in
      let rep =
        Scale_out.to_csv_chunked ~resume:true ~db ~copies:2 ~chunk_rows ~dir
          ~run_id:"rob" ()
      in
      scenario "crash+resume byte-identity"
        (crashed
        && rep.Scale_out.cr_resumed = 2
        && (not (has_tmp dir))
        && identical dir);
      rm_rf dir;
      (* injected ENOSPC: typed Io_failure, committed prefix intact, no
         orphaned temp files *)
      let dir = fresh_dir "rob_enospc" in
      let enospc =
        let backend =
          Sink.faulty
            { Sink.no_faults with enospc_after_bytes = Some 4096 }
            Sink.os_backend
        in
        match
          Scale_out.to_csv_chunked ~backend ~db ~copies:2 ~chunk_rows ~dir
            ~run_id:"rob-e" ()
        with
        | _ -> false
        | exception Sink.Io_failure _ -> not (has_tmp dir)
      in
      scenario "enospc typed failure, no orphans" enospc;
      rm_rf dir;
      (* expired wall-clock budget: typed Diag at the budget stage, exit 3 *)
      let budget_config =
        { config with
          Mirage_core.Driver.budget =
            { Budget.no_limits with Budget.deadline_s = Some 0.0 } }
      in
      let deadline =
        match
          Mirage_core.Driver.generate ~config:budget_config workload ~ref_db
            ~prod_env
        with
        | Ok _ -> false
        | Error d -> Mirage_core.Diag.exit_code d = 3
      in
      scenario "deadline budget yields exit 3" deadline;
      rm_rf mono

let () =
  let worst = ref 0.0 and failures = ref 0 in
  List.iter
    (fun seed ->
      List.iter
        (fun (name, make, sf) ->
          let workload, ref_db, prod_env = make ~sf ~seed in
          match
            Mirage_core.Driver.generate
              ~config:{ Mirage_core.Driver.default_config with batch_size = 1_000_000; seed }
              workload ~ref_db ~prod_env
          with
          | Error d ->
              incr failures;
              Printf.printf "%s seed=%d FAILED: %s\n%!" name seed
                (Mirage_core.Diag.to_string d)
          | Ok r ->
              let errs = Mirage_core.Driver.measure_errors r in
              let w =
                List.fold_left
                  (fun a (e : Mirage_core.Error.query_error) ->
                    max a e.Mirage_core.Error.qe_relative)
                  0.0 errs
              in
              worst := max !worst w;
              let exact =
                List.length
                  (List.filter
                     (fun (e : Mirage_core.Error.query_error) ->
                       e.Mirage_core.Error.qe_relative = 0.0)
                     errs)
              in
              Printf.printf "%s seed=%d: %d/%d exact, worst %.5f\n%!" name seed exact
                (List.length errs) w)
        [
          ("ssb", Mirage_workloads.Ssb.make, 0.5);
          ("tpch", Mirage_workloads.Tpch.make, 0.1);
          ("tpcds", Mirage_workloads.Tpcds.make, 0.1);
        ])
    [ 1; 2; 3; 11; 99 ];
  sink_scenarios failures;
  Printf.printf "overall: %d failures, worst error %.5f\n" !failures !worst
