(* Bench regression gate: compares a fresh BENCH_mirage.json against the
   committed baseline and fails (exit 1) when
     - over the matched fig14 + speedup + replay entries, the summed
       end-to-end wall time regresses more than 2x, or the summed
       working-set bytes per generated row regresses more than 2x, or
     - over the matched emit entries, the summed CSV export throughput
       (rows/s) drops below half the baseline, or
     - over the matched chunked entries, the summed peak working set of the
       crash-safe chunked export grows more than 2x (the sink must stay
       bounded by the tile window, not the output size; the bench itself
       hard-fails if the chunked bytes ever diverge from the monolithic
       writer).
   CI-runner noise is well inside those bounds; a kernel-level slowdown, a
   storage-layer boxing regression or a de-templated output path is not.
   Baselines written before the memory or emit fields existed skip those
   gates gracefully.

   Usage: bench_gate.exe BASELINE.json FRESH.json *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

(* minimal field extraction from the bench writer's one-entry-per-line JSON;
   no external JSON dependency *)
let string_field line key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  match String.index_opt line '{' with
  | None -> None
  | Some _ -> (
      let plen = String.length pat in
      let n = String.length line in
      let rec find i =
        if i + plen > n then None
        else if String.sub line i plen = pat then
          let start = i + plen in
          match String.index_from_opt line start '"' with
          | Some stop -> Some (String.sub line start (stop - start))
          | None -> None
        else find (i + 1)
      in
      find 0)

let float_field line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let plen = String.length pat in
  let n = String.length line in
  let rec find i =
    if i + plen > n then None
    else if String.sub line i plen = pat then begin
      let start = i + plen in
      let stop = ref start in
      while
        !stop < n
        && (match line.[!stop] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))
    end
    else find (i + 1)
  in
  find 0

type entry = {
  e_exp : string;
  e_wl : string;
  e_key : string;
  e_seconds : float;
  e_bytes_per_row : float option;
  e_rows_per_s : float option;
  e_peak_mb : float option;
  e_mb_per_s : float option;
  (* speedup-gate fields (schema v2); absent in older baselines *)
  e_domains : int option;
  e_cores : int option;
  e_speedup : float option;
}

let load path =
  let ic = try open_in path with Sys_error m -> fail "cannot open %s: %s" path m in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       match (string_field line "experiment", string_field line "workload",
              string_field line "label", float_field line "seconds")
       with
       | Some exp, Some wl, Some label, Some seconds
         when exp = "fig14" || exp = "speedup" || exp = "replay"
              || exp = "emit" || exp = "chunked" || exp = "outofcore"
              || exp = "sched" ->
           entries :=
             { e_exp = exp;
               e_wl = wl;
               e_key = Printf.sprintf "%s/%s/%s" exp wl label;
               e_seconds = seconds;
               e_bytes_per_row = float_field line "bytes_per_row";
               e_rows_per_s = float_field line "rows_per_s";
               e_peak_mb = float_field line "peak_mb";
               e_mb_per_s = float_field line "mb_per_s";
               e_domains = Option.map int_of_float (float_field line "domains");
               e_cores = Option.map int_of_float (float_field line "cores");
               e_speedup = float_field line "speedup_vs_1" }
             :: !entries
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  !entries

(* one gate dimension: sum a metric over the matched keys, compare ratios.
   [None] metrics (field absent from the baseline) exclude the entry.
   [higher_is_better] inverts the direction: a cost metric (time, bytes)
   fails when fresh exceeds 2x baseline; a throughput metric (rows/s) fails
   when fresh falls below baseline/2. *)
let gate ~what ~floor ?(higher_is_better = false) baseline fresh metric =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match metric e with Some v -> Hashtbl.replace tbl e.e_key v | None -> ())
    baseline;
  let matched = ref 0 and base_total = ref 0.0 and fresh_total = ref 0.0 in
  List.iter
    (fun e ->
      match (Hashtbl.find_opt tbl e.e_key, metric e) with
      | Some base, Some v ->
          incr matched;
          base_total := !base_total +. base;
          fresh_total := !fresh_total +. v
      | _ -> ())
    fresh;
  if !matched = 0 then begin
    Printf.printf "bench gate: %s — no comparable entries, skipped\n" what;
    true
  end
  else begin
    (* floor the denominator: near-zero baselines would make the ratio pure
       noise *)
    let base = max !base_total floor in
    let ratio = !fresh_total /. base in
    Printf.printf
      "bench gate: %s — %d matched entries, baseline %.3f, fresh %.3f, ratio %.2fx\n"
      what !matched !base_total !fresh_total ratio;
    let regressed = if higher_is_better then ratio < 0.5 else ratio > 2.0 in
    if regressed then begin
      Printf.eprintf "bench gate: FAIL — %s regressed %.2fx (%s allowed)\n"
        what ratio
        (if higher_is_better then ">= 0.5x" else "<= 2x");
      false
    end
    else true
  end

(* absolute multicore-scaling gate over the FRESH speedup entries (no
   baseline needed — the thresholds are the acceptance bar itself): at least
   two workloads must reach speedup_vs_1 >= 1.3 at domains=2 with peak
   memory at domains=2 within 1.3x of domains=1, and >= 1.8 at domains=4
   when the host has >= 4 cores.  A host that cannot physically express the
   scaling (cores < 2, e.g. a dev container) records its core count in the
   entries and the gate skips rather than lying either way. *)
let speedup_gate fresh =
  let sp = List.filter (fun e -> e.e_exp = "speedup") fresh in
  let cores =
    List.fold_left
      (fun acc e -> match e.e_cores with Some c -> max acc c | None -> acc)
      0 sp
  in
  if sp = [] then begin
    print_endline "bench gate: parallel speedup — no speedup entries, skipped";
    true
  end
  else if cores < 2 then begin
    Printf.printf
      "bench gate: parallel speedup — host has %d core(s); scaling not \
       physically expressible, skipped\n"
      (max cores 1);
    true
  end
  else begin
    let workloads = List.sort_uniq compare (List.map (fun e -> e.e_wl) sp) in
    let at wl d =
      List.find_opt (fun e -> e.e_wl = wl && e.e_domains = Some d) sp
    in
    let passes =
      List.filter
        (fun wl ->
          match (at wl 1, at wl 2) with
          | Some e1, Some e2 ->
              let sp2 = Option.value ~default:0.0 e2.e_speedup in
              let mem_ok =
                match (e1.e_peak_mb, e2.e_peak_mb) with
                | Some p1, Some p2 when p1 > 0.0 -> p2 <= 1.3 *. p1
                | _ -> true
              in
              let sp4_ok =
                if cores < 4 then true
                else
                  match at wl 4 with
                  | Some e4 -> Option.value ~default:0.0 e4.e_speedup >= 1.8
                  | None -> true
              in
              let ok = sp2 >= 1.3 && mem_ok && sp4_ok in
              Printf.printf
                "bench gate: parallel speedup — %-8s d2 %.2fx (>= 1.3), peak \
                 d2/d1 %.2fx (<= 1.3)%s: %s\n"
                wl sp2
                (match (e1.e_peak_mb, e2.e_peak_mb) with
                | Some p1, Some p2 when p1 > 0.0 -> p2 /. p1
                | _ -> 1.0)
                (if cores >= 4 then
                   Printf.sprintf ", d4 %.2fx (>= 1.8)"
                     (match at wl 4 with
                     | Some e4 -> Option.value ~default:0.0 e4.e_speedup
                     | None -> 0.0)
                 else "")
                (if ok then "ok" else "BELOW BAR");
              ok
          | _ -> false)
        workloads
    in
    let required = min 2 (List.length workloads) in
    if List.length passes >= required then begin
      Printf.printf
        "bench gate: parallel speedup — %d/%d workloads at the bar (need %d) \
         on a %d-core host\n"
        (List.length passes) (List.length workloads) required cores;
      true
    end
    else begin
      Printf.eprintf
        "bench gate: FAIL — multicore scaling regressed: %d/%d workloads at \
         the bar, need %d (host cores %d)\n"
        (List.length passes) (List.length workloads) required cores;
      false
    end
  end

(* absolute pipeline-scheduler gate over the FRESH sched entries (no
   baseline needed — the thresholds are the acceptance bar itself): the
   overlap schedule must beat the barrier schedule's end-to-end wall time by
   >= 1.25x at domains=4 on at least two workloads, with overlap peak memory
   within 1.3x of barrier on those workloads (the DAG may keep a few more
   columns live at once, but must not hoard table copies).  The bench
   records overlap's speedup_vs_1 against its own barrier run, so the bar
   needs no baseline file.  A host with < 4 cores time-shares the 4 domains
   and cannot physically express the overlap win; its core count is in the
   entries and the gate skips (same policy as the speedup gate). *)
let sched_gate fresh =
  let sc = List.filter (fun e -> e.e_exp = "sched") fresh in
  let cores =
    List.fold_left
      (fun acc e -> match e.e_cores with Some c -> max acc c | None -> acc)
      0 sc
  in
  if sc = [] then begin
    print_endline "bench gate: pipeline scheduler — no sched entries, skipped";
    true
  end
  else if cores < 4 then begin
    Printf.printf
      "bench gate: pipeline scheduler — host has %d core(s); the overlap \
       win is not physically expressible at domains=4, skipped\n"
      (max cores 1);
    true
  end
  else begin
    let workloads = List.sort_uniq compare (List.map (fun e -> e.e_wl) sc) in
    let at wl label =
      List.find_opt
        (fun e -> e.e_wl = wl && e.e_key = Printf.sprintf "sched/%s/%s" wl label)
        sc
    in
    let passes =
      List.filter
        (fun wl ->
          match (at wl "barrier", at wl "overlap") with
          | Some b, Some o ->
              let sp = Option.value ~default:0.0 o.e_speedup in
              let mem_ratio =
                match (b.e_peak_mb, o.e_peak_mb) with
                | Some pb, Some po when pb > 0.0 -> po /. pb
                | _ -> 1.0
              in
              let ok = sp >= 1.25 && mem_ratio <= 1.3 in
              Printf.printf
                "bench gate: pipeline scheduler — %-8s overlap %.2fx barrier \
                 (>= 1.25), peak overlap/barrier %.2fx (<= 1.3): %s\n"
                wl sp mem_ratio
                (if ok then "ok" else "BELOW BAR");
              ok
          | _ -> false)
        workloads
    in
    let required = min 2 (List.length workloads) in
    if List.length passes >= required then begin
      Printf.printf
        "bench gate: pipeline scheduler — %d/%d workloads at the bar (need \
         %d) on a %d-core host\n"
        (List.length passes) (List.length workloads) required cores;
      true
    end
    else begin
      Printf.eprintf
        "bench gate: FAIL — overlap scheduling regressed: %d/%d workloads at \
         the bar, need %d (host cores %d)\n"
        (List.length passes) (List.length workloads) required cores;
      false
    end
  end

(* absolute out-of-core gate over the FRESH outofcore entries (the
   thresholds are the acceptance bar itself, no baseline needed):
     - generation peak heap at 16x the bench SF must stay within 1.2x of the
       1x run (the big-column backend moved table-sized storage off the
       OCaml heap, so 16x the rows must not mean 16x the heap).  The 1x peak
       is floored at 16 MB: at CI-smoke scale both runs sit in GC-noise
       territory where a ratio would gate on nothing real.
     - streamed generation at 64x the bench SF (gen-64x runs with a chunk
       plan) must keep its peak within 1.2x of the 16x run, same 16 MB
       floor: the chunk-at-a-time pipeline, not just the off-heap spill,
       is what keeps 4x more rows from meaning more heap.  Baselines
       written before gen-64x existed skip this bar gracefully.
     - the domain-owned sharded writer must emit compressed output at >=
       1.5x the single-drain MB/s at domains=4, where the drain serializes
       per-shard gzip work.  Skipped on hosts with < 4 cores, which cannot
       physically express the scaling (same policy as the speedup gate). *)
let outofcore_gate fresh =
  let oc = List.filter (fun e -> e.e_exp = "outofcore") fresh in
  if oc = [] then begin
    print_endline "bench gate: out-of-core — no outofcore entries, skipped";
    true
  end
  else begin
    let label_is suffix e =
      let n = String.length e.e_key and m = String.length suffix in
      n >= m && String.sub e.e_key (n - m) m = suffix
    in
    let find suffix = List.find_opt (label_is suffix) oc in
    let mem_ok =
      match (find "/gen-1x", find "/gen-16x") with
      | Some e1, Some e16 -> (
          match (e1.e_peak_mb, e16.e_peak_mb) with
          | Some p1, Some p16 ->
              let bar = 1.2 *. Float.max p1 16.0 in
              let ok = p16 <= bar in
              Printf.printf
                "bench gate: out-of-core memory — peak 1x %.1f MB, 16x %.1f \
                 MB (<= %.1f): %s\n"
                p1 p16 bar
                (if ok then "ok" else "BELOW BAR");
              if not ok then
                Printf.eprintf
                  "bench gate: FAIL — 16x-SF generation peak %.1f MB exceeds \
                   1.2x the 1x run (%.1f MB allowed)\n"
                  p16 bar;
              ok
          | _ ->
              print_endline
                "bench gate: out-of-core memory — peak fields absent, skipped";
              true)
      | _ ->
          print_endline
            "bench gate: out-of-core memory — gen entries absent, skipped";
          true
    in
    let stream_ok =
      match (find "/gen-16x", find "/gen-64x") with
      | Some e16, Some e64 -> (
          match (e16.e_peak_mb, e64.e_peak_mb) with
          | Some p16, Some p64 ->
              let bar = 1.2 *. Float.max p16 16.0 in
              let ok = p64 <= bar in
              Printf.printf
                "bench gate: out-of-core streamed memory — peak 16x %.1f MB, \
                 64x %.1f MB (<= %.1f): %s\n"
                p16 p64 bar
                (if ok then "ok" else "BELOW BAR");
              if not ok then
                Printf.eprintf
                  "bench gate: FAIL — 64x-SF streamed generation peak %.1f MB \
                   exceeds 1.2x the 16x run (%.1f MB allowed)\n"
                  p64 bar;
              ok
          | _ ->
              print_endline
                "bench gate: out-of-core streamed memory — peak fields \
                 absent, skipped";
              true)
      | _ ->
          print_endline
            "bench gate: out-of-core streamed memory — gen-64x entry absent, \
             skipped";
          true
    in
    let cores =
      List.fold_left
        (fun acc e -> match e.e_cores with Some c -> max acc c | None -> acc)
        0 oc
    in
    let emit_ok =
      if cores < 4 then begin
        Printf.printf
          "bench gate: out-of-core sharded emit — host has %d core(s); \
           scaling not physically expressible, skipped\n"
          (max cores 1);
        true
      end
      else
        match (find "/emit-drain-d4", find "/emit-sharded-d4") with
        | Some d, Some s -> (
            match (d.e_mb_per_s, s.e_mb_per_s) with
            | Some drain, Some sharded when drain > 0.0 ->
                let ok = sharded >= 1.5 *. drain in
                Printf.printf
                  "bench gate: out-of-core sharded emit — drain %.1f MB/s, \
                   sharded %.1f MB/s at domains=4 (%.2fx, >= 1.5x): %s\n"
                  drain sharded (sharded /. drain)
                  (if ok then "ok" else "BELOW BAR");
                if not ok then
                  Printf.eprintf
                    "bench gate: FAIL — sharded emit %.2fx the single drain \
                     at domains=4, need >= 1.5x\n"
                    (sharded /. drain);
                ok
            | _ ->
                print_endline
                  "bench gate: out-of-core sharded emit — mb_per_s absent, \
                   skipped";
                true)
        | _ ->
            print_endline
              "bench gate: out-of-core sharded emit — domains=4 entries \
               absent, skipped";
            true
    in
    mem_ok && stream_ok && emit_ok
  end

let () =
  let baseline_path, fresh_path =
    match Sys.argv with
    | [| _; b; f |] -> (b, f)
    | _ -> fail "usage: bench_gate.exe BASELINE.json FRESH.json"
  in
  let baseline = load baseline_path and fresh = load fresh_path in
  if baseline = [] then fail "no end-to-end entries in baseline %s" baseline_path;
  if fresh = [] then fail "no end-to-end entries in fresh run %s" fresh_path;
  (* outofcore entries are judged by their own absolute gate below, not the
     relative end-to-end sums (their fixed spill threshold makes the working
     set incomparable with the stock runs) *)
  let end_to_end e =
    e.e_exp <> "emit" && e.e_exp <> "chunked" && e.e_exp <> "outofcore"
    && e.e_exp <> "sched"
  in
  let time_ok =
    gate ~what:"end-to-end wall time (s)" ~floor:0.01 baseline fresh (fun e ->
        if end_to_end e then Some e.e_seconds else None)
  in
  let mem_ok =
    gate ~what:"working-set bytes per row" ~floor:1.0 baseline fresh (fun e ->
        if not (end_to_end e) then None
        else
          match e.e_bytes_per_row with
          | Some b when b > 0.0 -> Some b
          | _ -> None)
  in
  let emit_ok =
    gate ~what:"emit throughput (rows/s)" ~floor:1.0 ~higher_is_better:true
      baseline fresh (fun e ->
        if e.e_exp <> "emit" then None
        else match e.e_rows_per_s with Some r when r > 0.0 -> Some r | _ -> None)
  in
  let chunked_ok =
    (* Mem.measure takes a forced end-of-region sample, so a bounded sink
       reports its real (small, nonzero) tile-window peak; the 1.0 floor on
       the baseline sum only guards ratio noise, and a sink that regresses
       to buffering O(output) still trips the 2x bound *)
    gate ~what:"chunked export peak memory (MB)" ~floor:1.0 baseline fresh
      (fun e ->
        if e.e_exp <> "chunked" then None else e.e_peak_mb)
  in
  let speedup_ok = speedup_gate fresh in
  let sched_ok = sched_gate fresh in
  let outofcore_ok = outofcore_gate fresh in
  if
    time_ok && mem_ok && emit_ok && chunked_ok && speedup_ok && sched_ok
    && outofcore_ok
  then print_endline "bench gate: OK"
  else exit 1
