(* Bench regression gate: compares a fresh BENCH_mirage.json against the
   committed baseline and fails (exit 1) when the summed end-to-end
   generation wall time over the matched fig14 + speedup entries regresses
   more than 2x.  CI-runner noise is well inside that bound; a kernel-level
   slowdown is not.

   Usage: bench_gate.exe BASELINE.json FRESH.json *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

(* minimal field extraction from the bench writer's one-entry-per-line JSON;
   no external JSON dependency *)
let string_field line key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  match String.index_opt line '{' with
  | None -> None
  | Some _ -> (
      let plen = String.length pat in
      let n = String.length line in
      let rec find i =
        if i + plen > n then None
        else if String.sub line i plen = pat then
          let start = i + plen in
          match String.index_from_opt line start '"' with
          | Some stop -> Some (String.sub line start (stop - start))
          | None -> None
        else find (i + 1)
      in
      find 0)

let float_field line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let plen = String.length pat in
  let n = String.length line in
  let rec find i =
    if i + plen > n then None
    else if String.sub line i plen = pat then begin
      let start = i + plen in
      let stop = ref start in
      while
        !stop < n
        && (match line.[!stop] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))
    end
    else find (i + 1)
  in
  find 0

type entry = { e_key : string; e_seconds : float }

let load path =
  let ic = try open_in path with Sys_error m -> fail "cannot open %s: %s" path m in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       match (string_field line "experiment", string_field line "workload",
              string_field line "label", float_field line "seconds")
       with
       | Some exp, Some wl, Some label, Some seconds
         when exp = "fig14" || exp = "speedup" ->
           entries :=
             { e_key = Printf.sprintf "%s/%s/%s" exp wl label; e_seconds = seconds }
             :: !entries
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  !entries

let () =
  let baseline_path, fresh_path =
    match Sys.argv with
    | [| _; b; f |] -> (b, f)
    | _ -> fail "usage: bench_gate.exe BASELINE.json FRESH.json"
  in
  let baseline = load baseline_path and fresh = load fresh_path in
  if baseline = [] then fail "no end-to-end entries in baseline %s" baseline_path;
  if fresh = [] then fail "no end-to-end entries in fresh run %s" fresh_path;
  let tbl = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace tbl e.e_key e.e_seconds) baseline;
  let matched = ref 0 and base_total = ref 0.0 and fresh_total = ref 0.0 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt tbl e.e_key with
      | Some base ->
          incr matched;
          base_total := !base_total +. base;
          fresh_total := !fresh_total +. e.e_seconds
      | None -> ())
    fresh;
  if !matched = 0 then fail "no entries in common between baseline and fresh run";
  (* floor the denominator: sub-millisecond baselines would make the ratio
     pure noise *)
  let base = max !base_total 0.01 in
  let ratio = !fresh_total /. base in
  Printf.printf
    "bench gate: %d matched end-to-end entries, baseline %.3fs, fresh %.3fs, ratio %.2fx\n"
    !matched !base_total !fresh_total ratio;
  if ratio > 2.0 then begin
    Printf.eprintf
      "bench gate: FAIL — end-to-end generation regressed %.2fx (> 2x allowed)\n"
      ratio;
    exit 1
  end
  else print_endline "bench gate: OK"
