(* Bench regression gate: compares a fresh BENCH_mirage.json against the
   committed baseline and fails (exit 1) when
     - over the matched fig14 + speedup + replay entries, the summed
       end-to-end wall time regresses more than 2x, or the summed
       working-set bytes per generated row regresses more than 2x, or
     - over the matched emit entries, the summed CSV export throughput
       (rows/s) drops below half the baseline, or
     - over the matched chunked entries, the summed peak working set of the
       crash-safe chunked export grows more than 2x (the sink must stay
       bounded by the tile window, not the output size; the bench itself
       hard-fails if the chunked bytes ever diverge from the monolithic
       writer).
   CI-runner noise is well inside those bounds; a kernel-level slowdown, a
   storage-layer boxing regression or a de-templated output path is not.
   Baselines written before the memory or emit fields existed skip those
   gates gracefully.

   Usage: bench_gate.exe BASELINE.json FRESH.json *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

(* minimal field extraction from the bench writer's one-entry-per-line JSON;
   no external JSON dependency *)
let string_field line key =
  let pat = Printf.sprintf "\"%s\": \"" key in
  match String.index_opt line '{' with
  | None -> None
  | Some _ -> (
      let plen = String.length pat in
      let n = String.length line in
      let rec find i =
        if i + plen > n then None
        else if String.sub line i plen = pat then
          let start = i + plen in
          match String.index_from_opt line start '"' with
          | Some stop -> Some (String.sub line start (stop - start))
          | None -> None
        else find (i + 1)
      in
      find 0)

let float_field line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let plen = String.length pat in
  let n = String.length line in
  let rec find i =
    if i + plen > n then None
    else if String.sub line i plen = pat then begin
      let start = i + plen in
      let stop = ref start in
      while
        !stop < n
        && (match line.[!stop] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))
    end
    else find (i + 1)
  in
  find 0

type entry = {
  e_exp : string;
  e_key : string;
  e_seconds : float;
  e_bytes_per_row : float option;
  e_rows_per_s : float option;
  e_peak_mb : float option;
}

let load path =
  let ic = try open_in path with Sys_error m -> fail "cannot open %s: %s" path m in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       match (string_field line "experiment", string_field line "workload",
              string_field line "label", float_field line "seconds")
       with
       | Some exp, Some wl, Some label, Some seconds
         when exp = "fig14" || exp = "speedup" || exp = "replay"
              || exp = "emit" || exp = "chunked" ->
           entries :=
             { e_exp = exp;
               e_key = Printf.sprintf "%s/%s/%s" exp wl label;
               e_seconds = seconds;
               e_bytes_per_row = float_field line "bytes_per_row";
               e_rows_per_s = float_field line "rows_per_s";
               e_peak_mb = float_field line "peak_mb" }
             :: !entries
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  !entries

(* one gate dimension: sum a metric over the matched keys, compare ratios.
   [None] metrics (field absent from the baseline) exclude the entry.
   [higher_is_better] inverts the direction: a cost metric (time, bytes)
   fails when fresh exceeds 2x baseline; a throughput metric (rows/s) fails
   when fresh falls below baseline/2. *)
let gate ~what ~floor ?(higher_is_better = false) baseline fresh metric =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match metric e with Some v -> Hashtbl.replace tbl e.e_key v | None -> ())
    baseline;
  let matched = ref 0 and base_total = ref 0.0 and fresh_total = ref 0.0 in
  List.iter
    (fun e ->
      match (Hashtbl.find_opt tbl e.e_key, metric e) with
      | Some base, Some v ->
          incr matched;
          base_total := !base_total +. base;
          fresh_total := !fresh_total +. v
      | _ -> ())
    fresh;
  if !matched = 0 then begin
    Printf.printf "bench gate: %s — no comparable entries, skipped\n" what;
    true
  end
  else begin
    (* floor the denominator: near-zero baselines would make the ratio pure
       noise *)
    let base = max !base_total floor in
    let ratio = !fresh_total /. base in
    Printf.printf
      "bench gate: %s — %d matched entries, baseline %.3f, fresh %.3f, ratio %.2fx\n"
      what !matched !base_total !fresh_total ratio;
    let regressed = if higher_is_better then ratio < 0.5 else ratio > 2.0 in
    if regressed then begin
      Printf.eprintf "bench gate: FAIL — %s regressed %.2fx (%s allowed)\n"
        what ratio
        (if higher_is_better then ">= 0.5x" else "<= 2x");
      false
    end
    else true
  end

let () =
  let baseline_path, fresh_path =
    match Sys.argv with
    | [| _; b; f |] -> (b, f)
    | _ -> fail "usage: bench_gate.exe BASELINE.json FRESH.json"
  in
  let baseline = load baseline_path and fresh = load fresh_path in
  if baseline = [] then fail "no end-to-end entries in baseline %s" baseline_path;
  if fresh = [] then fail "no end-to-end entries in fresh run %s" fresh_path;
  let end_to_end e = e.e_exp <> "emit" && e.e_exp <> "chunked" in
  let time_ok =
    gate ~what:"end-to-end wall time (s)" ~floor:0.01 baseline fresh (fun e ->
        if end_to_end e then Some e.e_seconds else None)
  in
  let mem_ok =
    gate ~what:"working-set bytes per row" ~floor:1.0 baseline fresh (fun e ->
        if not (end_to_end e) then None
        else
          match e.e_bytes_per_row with
          | Some b when b > 0.0 -> Some b
          | _ -> None)
  in
  let emit_ok =
    gate ~what:"emit throughput (rows/s)" ~floor:1.0 ~higher_is_better:true
      baseline fresh (fun e ->
        if e.e_exp <> "emit" then None
        else match e.e_rows_per_s with Some r when r > 0.0 -> Some r | _ -> None)
  in
  let chunked_ok =
    gate ~what:"chunked export peak memory (MB)" ~floor:1.0 baseline fresh
      (fun e ->
        if e.e_exp <> "chunked" then None
        else match e.e_peak_mb with Some m when m > 0.0 -> Some m | _ -> None)
  in
  if time_ok && mem_ok && emit_ok && chunked_ok then
    print_endline "bench gate: OK"
  else exit 1
