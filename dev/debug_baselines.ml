module Error = Mirage_core.Error
module Extract = Mirage_core.Extract

let avg l = if l = [] then 0.0 else List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let run_baseline name gen workload ref_db prod_env =
  let r : Mirage_baselines.Types.result = gen workload ~ref_db ~prod_env ~seed:11 in
  (* annotate original plans on ref db for scoring *)
  let ex = Extract.run workload ~ref_db ~prod_env in
  let errs =
    Error.measure ~aqts:ex.Extract.aqts ~db:r.Mirage_baselines.Types.b_db
      ~env:r.Mirage_baselines.Types.b_env
  in
  let scored =
    List.map
      (fun (e : Error.query_error) ->
        if List.mem e.qe_name r.Mirage_baselines.Types.b_unsupported then
          { e with Error.qe_relative = 1.0 }
        else e)
      errs
  in
  Printf.printf "%s: %d supported, %d unsupported, %.2fs\n" name
    (List.length r.Mirage_baselines.Types.b_supported)
    (List.length r.Mirage_baselines.Types.b_unsupported)
    r.Mirage_baselines.Types.b_seconds;
  List.iter
    (fun (e : Error.query_error) ->
      Printf.printf "  %-14s err=%.4f\n" e.qe_name e.qe_relative)
    scored;
  Printf.printf "  mean=%.4f\n" (avg (List.map (fun (e : Error.query_error) -> e.qe_relative) scored))

let () =
  let which = try Sys.argv.(1) with _ -> "ssb" in
  let workload, ref_db, prod_env =
    match which with
    | "tpch" -> Mirage_workloads.Tpch.make ~sf:0.2 ~seed:7
    | "tpcds" -> Mirage_workloads.Tpcds.make ~sf:0.2 ~seed:7
    | _ -> Mirage_workloads.Ssb.make ~sf:1.0 ~seed:7
  in
  run_baseline "touchstone" Mirage_baselines.Touchstone.generate workload ref_db prod_env;
  run_baseline "hydra" Mirage_baselines.Hydra.generate workload ref_db prod_env;
  Fmt.pr "%a" Mirage_baselines.Capability.pp (Mirage_baselines.Capability.table ())
