let () =
  let sf = try float_of_string Sys.argv.(1) with _ -> 0.2 in
  let workload, ref_db, prod_env = Mirage_workloads.Tpch.make ~sf ~seed:7 in
  let t0 = Unix.gettimeofday () in
  match
    Mirage_core.Driver.generate
      ~config:{ Mirage_core.Driver.default_config with batch_size = 1_000_000 }
      workload ~ref_db ~prod_env
  with
  | Ok r ->
      Printf.printf "generated in %.2fs\n" (Unix.gettimeofday () -. t0);
      List.iter (fun w -> Printf.printf "WARN %s\n" w) r.Mirage_core.Driver.r_warnings;
      List.iter
        (fun (e : Mirage_core.Error.query_error) ->
          Printf.printf "%-10s err=%.5f%s\n" e.qe_name e.qe_relative
            (if e.qe_relative > 0.0001 then
               Printf.sprintf "  expected=[%s] actual=[%s]"
                 (String.concat ";" (List.map string_of_int e.qe_expected))
                 (String.concat ";" (List.map string_of_int e.qe_actual))
             else ""))
        (Mirage_core.Driver.measure_errors r)
  | Error d -> Printf.printf "FAILED: %s\n" (Mirage_core.Diag.to_string d)
