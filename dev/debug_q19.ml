module Ir = Mirage_core.Ir
module Extract = Mirage_core.Extract
let () =
  let workload, ref_db, prod_env = Mirage_workloads.Tpch.make ~sf:0.2 ~seed:7 in
  let w19 = { workload with Mirage_core.Workload.w_queries =
      List.filter (fun (q:Mirage_core.Workload.query) ->
        q.q_name = "tpch_q19") workload.Mirage_core.Workload.w_queries } in
  let ex = Extract.run w19 ~ref_db ~prod_env in
  Fmt.pr "%a@." Ir.pp ex.Extract.ir;
  List.iter (fun (name, rw, aux) ->
    Fmt.pr "rewritten %s:@.%a@." name Mirage_relalg.Plan.pp rw;
    List.iter (fun a -> Fmt.pr "aux:@.%a@." Mirage_relalg.Plan.pp a) aux)
    ex.Extract.rewritten
