module Db = Mirage_engine.Db
module Value = Mirage_sql.Value
let () =
  let workload, ref_db, prod_env = Mirage_workloads.Tpch.make ~sf:0.1 ~seed:7 in
  match Mirage_core.Driver.generate workload ~ref_db ~prod_env with
  | Error d -> print_endline (Mirage_core.Diag.to_string d)
  | Ok r ->
      let count db =
        let h = Hashtbl.create 30 in
        Array.iter (fun v -> Hashtbl.replace h v (1 + (try Hashtbl.find h v with Not_found -> 0)))
          (Db.column db "part" "p_brand");
        h
      in
      let synth = count r.Mirage_core.Driver.r_db in
      Printf.printf "synth distinct: %d, total %d\n" (Hashtbl.length synth)
        (Hashtbl.fold (fun _ c a -> a + c) synth 0);
      Hashtbl.iter (fun v c -> Printf.printf "  %s -> %d\n" (Value.to_string v) c) synth
