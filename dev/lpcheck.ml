let () =
  let a = [| [| 1.0; 1.0; 0.0 |]; [| 1.0; 0.0; -1.0 |] |] in
  let b = [| 10.0; 3.0 |] in
  let c = [| 1.0; 0.0; 0.0 |] in
  match Mirage_lp.Lp.solve ~a ~b ~c () with
  | Mirage_lp.Lp.Optimal x -> Printf.printf "optimal: %f %f %f\n" x.(0) x.(1) x.(2)
  | Mirage_lp.Lp.Infeasible -> print_endline "infeasible"
  | Mirage_lp.Lp.Unbounded -> print_endline "unbounded"
