let () =
  let sf = try float_of_string Sys.argv.(1) with _ -> 0.5 in
  let workload, ref_db, prod_env = Mirage_workloads.Tpcds.make ~sf ~seed:7 in
  let t0 = Unix.gettimeofday () in
  match
    Mirage_core.Driver.generate
      ~config:{ Mirage_core.Driver.default_config with batch_size = 1_000_000 }
      workload ~ref_db ~prod_env
  with
  | Ok r ->
      Printf.printf "generated in %.2fs\n" (Unix.gettimeofday () -. t0);
      let t = r.Mirage_core.Driver.r_timings in
      Printf.printf
        "timings: extract=%.2f decouple=%.3f cdf=%.3f gd=%.3f acc=%.3f cs=%.2f cp=%.2f pf=%.2f total=%.2f cp_solves=%d cp_nodes=%d\n"
        t.Mirage_core.Driver.t_extract t.t_decouple t.t_cdf t.t_gd t.t_acc t.t_cs
        t.t_cp t.t_pf t.t_total t.cp_solves t.cp_nodes;
      List.iter (fun w -> Printf.printf "WARN %s\n" w) r.Mirage_core.Driver.r_warnings;
      let errs = Mirage_core.Driver.measure_errors r in
      let nonzero = List.filter (fun (e : Mirage_core.Error.query_error) -> e.qe_relative > 1e-9) errs in
      Printf.printf "%d/%d queries exactly zero error\n"
        (List.length errs - List.length nonzero) (List.length errs);
      List.iter
        (fun (e : Mirage_core.Error.query_error) ->
          Printf.printf "%-14s err=%.5f expected=[%s] actual=[%s]\n" e.qe_name e.qe_relative
            (String.concat ";" (List.map string_of_int e.qe_expected))
            (String.concat ";" (List.map string_of_int e.qe_actual)))
        nonzero
  | Error d -> Printf.printf "FAILED: %s\n" (Mirage_core.Diag.to_string d)
