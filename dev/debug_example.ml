module Value = Mirage_sql.Value
module Pred = Mirage_sql.Pred
module Schema = Mirage_sql.Schema
module Parser = Mirage_sql.Parser
module Plan = Mirage_relalg.Plan
module Db = Mirage_engine.Db
module Exec = Mirage_engine.Exec
module Workload = Mirage_core.Workload
module Driver = Mirage_core.Driver
module Extract = Mirage_core.Extract
module Ir = Mirage_core.Ir
module Decouple = Mirage_core.Decouple
module Diag = Mirage_core.Diag

let schema =
  Schema.make
    [
      { Schema.tname = "s"; pk = "s_pk";
        nonkeys = [ { Schema.cname = "s1"; domain_size = 4; kind = Schema.Kint } ];
        fks = []; row_count = 4 };
      { Schema.tname = "t"; pk = "t_pk";
        nonkeys =
          [ { Schema.cname = "t1"; domain_size = 5; kind = Schema.Kint };
            { Schema.cname = "t2"; domain_size = 4; kind = Schema.Kint } ];
        fks = [ { Schema.fk_col = "t_fk"; references = "s" } ]; row_count = 8 };
    ]

let ref_db () =
  let db = Db.create schema in
  let ints l = Array.of_list (List.map (fun x -> Value.Int x) l) in
  Db.put db "s" [ ("s_pk", ints [ 1; 2; 3; 4 ]); ("s1", ints [ 10; 20; 30; 40 ]) ];
  Db.put db "t"
    [ ("t_pk", ints [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
      ("t_fk", ints [ 1; 2; 2; 3; 3; 3; 4; 4 ]);
      ("t1", ints [ 1; 2; 3; 4; 4; 4; 5; 3 ]);
      ("t2", ints [ 1; 2; 2; 2; 3; 4; 1; 3 ]) ];
  db

let prod_env =
  Pred.Env.of_list
    [ ("p1", Pred.Env.Scalar (Value.Int 30));
      ("p2", Pred.Env.Scalar (Value.Int 2));
      ("p3", Pred.Env.Scalar (Value.Float 0.0));
      ("p4", Pred.Env.Scalar (Value.Int 1));
      ("p5", Pred.Env.Scalar (Value.Int 4));
      ("p6", Pred.Env.Scalar (Value.Float 2.0));
      ("p7", Pred.Env.Scalar (Value.Int 4));
      ("p8", Pred.Env.Scalar (Value.Int 2)) ]

let q1 =
  Plan.Project
    { cols = [ "t_fk" ];
      input =
        Plan.Join
          { jt = Plan.Inner; pk_table = "s"; fk_table = "t"; fk_col = "t_fk";
            left = Plan.Select (Parser.pred "s1 < $p1", Plan.Table "s");
            right = Plan.Select (Parser.pred "t1 > $p2", Plan.Table "t") } }

let q2 =
  Plan.Join
    { jt = Plan.Left_outer; pk_table = "s"; fk_table = "t"; fk_col = "t_fk";
      left = Plan.Table "s";
      right = Plan.Select (Parser.pred "t1 - t2 > $p3", Plan.Table "t") }

let q3 = Plan.Select (Parser.pred "(t1 <= $p4 or t2 = $p5) and t1 - t2 < $p6", Plan.Table "t")
let q4 = Plan.Select (Parser.pred "t1 <> $p7 or t2 <> $p8", Plan.Table "t")

let workload =
  Workload.make schema
    [ { Workload.q_name = "q1"; q_plan = q1 };
      { Workload.q_name = "q2"; q_plan = q2 };
      { Workload.q_name = "q3"; q_plan = q3 };
      { Workload.q_name = "q4"; q_plan = q4 } ]

let () =
  let db = ref_db () in
  let ex = Extract.run workload ~ref_db:db ~prod_env in
  Fmt.pr "=== IR ===@.%a@." Ir.pp ex.Extract.ir;
  let ir = ex.Extract.ir in
  let dom t c = List.assoc (t, c) ir.Ir.column_cards in
  let table_rows t = List.assoc t ir.Ir.table_cards in
  let dec = Decouple.run schema ~dom ~table_rows ir.Ir.sccs in
  Fmt.pr "=== UCCs ===@.";
  List.iter
    (fun (u : Ir.ucc) ->
      Fmt.pr "  %s: %s.%s %a rows=%d@." u.Ir.ucc_source u.Ir.ucc_table u.Ir.ucc_col
        Pred.pp (Pred.Lit u.Ir.ucc_lit) u.Ir.ucc_rows)
    dec.Decouple.uccs;
  Fmt.pr "=== ACCs ===@.";
  List.iter
    (fun (a : Ir.acc) -> Fmt.pr "  %s: rows=%d param=%s@." a.Ir.acc_source a.Ir.acc_rows a.Ir.acc_param)
    dec.Decouple.accs;
  Fmt.pr "=== bound ===@.";
  List.iter
    (fun (b : Ir.bound_rows) ->
      Fmt.pr "  %s: %s rows=%d cells=%s@." b.Ir.br_source b.Ir.br_table b.Ir.br_rows
        (String.concat "," (List.map (fun (c, p) -> c ^ "=" ^ p) b.Ir.br_cells)))
    dec.Decouple.bound;
  Fmt.pr "=== fixed env ===@.";
  List.iter
    (fun (p, b) ->
      match b with
      | Pred.Env.Scalar v -> Fmt.pr "  %s = %a@." p Value.pp v
      | Pred.Env.Vlist vs -> Fmt.pr "  %s = [%a]@." p Fmt.(list ~sep:comma Value.pp) vs)
    (Pred.Env.bindings dec.Decouple.fixed_env);
  List.iter (fun d -> Fmt.pr "SKIPPED %a@." Diag.pp d) dec.Decouple.skipped;
  match Driver.generate ~config:{ Driver.default_config with batch_size = 1000 } workload ~ref_db:db ~prod_env with
  | Ok r ->
      Fmt.pr "=== generated ===@.";
      List.iter (fun w -> Fmt.pr "WARN %s@." w) r.Driver.r_warnings;
      Fmt.pr "%s@." (Db.to_csv r.Driver.r_db "s");
      Fmt.pr "%s@." (Db.to_csv r.Driver.r_db "t");
      List.iter
        (fun (p, b) ->
          match b with
          | Pred.Env.Scalar v -> Fmt.pr "  %s = %a@." p Value.pp v
          | Pred.Env.Vlist vs -> Fmt.pr "  %s = [%a]@." p Fmt.(list ~sep:comma Value.pp) vs)
        (Pred.Env.bindings r.Driver.r_env);
      List.iter
        (fun (e : Mirage_core.Error.query_error) ->
          Fmt.pr "%s err=%.4f expected=[%s] actual=[%s]@." e.qe_name e.qe_relative
            (String.concat ";" (List.map string_of_int e.qe_expected))
            (String.concat ";" (List.map string_of_int e.qe_actual)))
        (Driver.measure_errors r)
  | Error d -> Fmt.pr "GENERATION FAILED: %a@." Diag.pp d
