(* Isolated-process peak-heap probe for one TPC-H generation run — the
   bench's in-process outofcore numbers share a heap with earlier runs'
   databases, so cross-checking a single configuration honestly needs a
   fresh process.  Prints the post-workload live set (reference DB + AQT
   structures) and the driver-reported generation peak.

   usage: mem_probe <sf> <big_rows> [chunk_rows] *)
module Driver = Mirage_core.Driver
module Col = Mirage_engine.Col

let () =
  let sf = float_of_string Sys.argv.(1) in
  let big = int_of_string Sys.argv.(2) in
  let chunk =
    if Array.length Sys.argv > 3 then Some (int_of_string Sys.argv.(3)) else None
  in
  Gc.set { (Gc.get ()) with Gc.space_overhead = 40 };
  Col.set_big_rows big;
  let workload, ref_db, prod_env = Mirage_workloads.Tpch.make ~sf ~seed:7 in
  Printf.printf "post-make live_mb=%.1f\n%!"
    (float_of_int (Mirage_util.Mem.live_bytes ()) /. 1_048_576.0);
  let config =
    { Driver.default_config with
      seed = 42;
      batch_size = 65_536;
      chunk_rows = chunk }
  in
  match Driver.generate ~config workload ~ref_db ~prod_env with
  | Error d ->
      prerr_endline (Mirage_core.Diag.to_string d);
      exit 1
  | Ok r ->
      Printf.printf "rows=%d peak_mb=%.1f\n"
        (List.fold_left
           (fun acc (t : Mirage_sql.Schema.table) ->
             acc
             + Mirage_engine.Db.row_count r.Driver.r_db t.Mirage_sql.Schema.tname)
           0
           (Mirage_sql.Schema.tables (Mirage_engine.Db.schema r.Driver.r_db)))
        (float_of_int r.Driver.r_peak_bytes /. 1_048_576.0)
