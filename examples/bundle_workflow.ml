(* The deployment workflow (§1 of the paper):

     production side                      development side
     ───────────────                      ────────────────
     workload parser reads the real      loads the bundle (never sees a
     database and writes a *constraint    production row), regenerates the
     bundle* — schema, templates,         environment, and exports SQL for
     cardinalities, parameter values      any DBMS

   Run with:  dune exec examples/bundle_workflow.exe *)

module Driver = Mirage_core.Driver
module Bundle = Mirage_core.Bundle
module Extract = Mirage_core.Extract

let () =
  (* ---- production side ---- *)
  let workload, ref_db, prod_env = Mirage_workloads.Ssb.make ~sf:0.5 ~seed:7 in
  let extraction = Extract.run workload ~ref_db ~prod_env in
  let bundle = Bundle.of_extraction workload extraction ~prod_env in
  let path = Filename.temp_file "ssb" ".bundle" in
  Bundle.save bundle ~path;
  Printf.printf "production side wrote %s (%d bytes) — no rows inside\n" path
    (let ic = open_in path in
     let n = in_channel_length ic in
     close_in ic;
     n);

  (* ---- development side: only the bundle file crosses the boundary ---- *)
  match Bundle.load ~path with
  | Error m -> prerr_endline ("bad bundle: " ^ m)
  | Ok loaded -> (
      match Driver.generate_from_bundle loaded with
      | Error d ->
          prerr_endline ("generation failed: " ^ Mirage_core.Diag.to_string d)
      | Ok r ->
          Printf.printf "development side regenerated the environment in %.3fs\n"
            r.Driver.r_timings.Driver.t_total;
          (* verify against the production annotations (possible here only
             because this example owns both sides) *)
          let errs =
            Mirage_core.Error.measure ~aqts:extraction.Extract.aqts ~db:r.Driver.r_db
              ~env:r.Driver.r_env
          in
          List.iter
            (fun (e : Mirage_core.Error.query_error) ->
              Printf.printf "  %-10s relative error %.5f\n" e.Mirage_core.Error.qe_name
                e.Mirage_core.Error.qe_relative)
            errs;
          (* export for a real DBMS *)
          let dir = Filename.temp_file "ssb_sql" "" in
          Sys.remove dir;
          Mirage_core.Sql_export.export_dir ~db:r.Driver.r_db
            ~workload:loaded.Bundle.b_workload ~env:r.Driver.r_env ~dir;
          Printf.printf "wrote %s/{schema,data,queries}.sql — load into any DBMS\n" dir)
