(* Authoring a custom workload with the predicate language, inspecting its
   operator features, and comparing Mirage against the baseline generators
   on it.

   Run with:  dune exec examples/custom_workload.exe *)

module Schema = Mirage_sql.Schema
module Value = Mirage_sql.Value
module Pred = Mirage_sql.Pred
module Parser = Mirage_sql.Parser
module Plan = Mirage_relalg.Plan
module Workload = Mirage_core.Workload
module Driver = Mirage_core.Driver
module Error = Mirage_core.Error
module Features = Mirage_workloads.Features

let schema =
  Schema.make
    [
      {
        Schema.tname = "sensor";
        pk = "s_id";
        nonkeys =
          [
            { Schema.cname = "s_kind"; domain_size = 8; kind = Schema.Kstring };
            { Schema.cname = "s_floor"; domain_size = 20; kind = Schema.Kint };
          ];
        fks = [];
        row_count = 400;
      };
      {
        Schema.tname = "reading";
        pk = "r_id";
        nonkeys =
          [
            { Schema.cname = "r_temp"; domain_size = 90; kind = Schema.Kint };
            { Schema.cname = "r_humid"; domain_size = 100; kind = Schema.Kint };
            { Schema.cname = "r_hour"; domain_size = 8760; kind = Schema.Kint };
          ];
        fks = [ { Schema.fk_col = "r_sensor"; references = "sensor" } ];
        row_count = 30_000;
      };
    ]

let join ?(jt = Plan.Inner) left right =
  Plan.Join { jt; pk_table = "sensor"; fk_table = "reading"; fk_col = "r_sensor"; left; right }

let queries =
  [
    (* arithmetic predicate across two measure columns *)
    ( "overheating",
      join
        (Plan.Select (Parser.pred "s_kind = $k1", Plan.Table "sensor"))
        (Plan.Select (Parser.pred "r_temp - r_humid > $delta", Plan.Table "reading")) );
    (* semi join: sensors that produced at least one hot reading *)
    ( "hot_sensors",
      join ~jt:Plan.Left_semi
        (Plan.Select (Parser.pred "s_floor >= $f1", Plan.Table "sensor"))
        (Plan.Select (Parser.pred "r_temp > $hot", Plan.Table "reading")) );
    (* OR across the join: elevated floor or recent reading *)
    ( "flagged",
      Plan.Select
        ( Parser.pred "s_floor > $f2 or r_hour >= $recent",
          join (Plan.Table "sensor") (Plan.Table "reading") ) );
  ]

let prod_env =
  Pred.Env.of_list
    [
      ("k1", Pred.Env.Scalar (Value.Str "KIND#00003"));
      ("delta", Pred.Env.Scalar (Value.Float (-10.0)));
      ("f1", Pred.Env.Scalar (Value.Int 15));
      ("hot", Pred.Env.Scalar (Value.Int 80));
      ("f2", Pred.Env.Scalar (Value.Int 17));
      ("recent", Pred.Env.Scalar (Value.Int 8000));
    ]

let () =
  let workload =
    Workload.make schema (List.map (fun (n, p) -> { Workload.q_name = n; q_plan = p }) queries)
  in
  print_endline "query features:";
  List.iter
    (fun (q : Workload.query) ->
      Fmt.pr "  %-12s %a  touchstone:%b hydra:%b@." q.Workload.q_name Features.pp
        (Features.of_plan schema q.Workload.q_plan)
        (Mirage_baselines.Support.touchstone_supports schema q.Workload.q_plan)
        (Mirage_baselines.Support.hydra_supports schema q.Workload.q_plan))
    workload.Workload.w_queries;
  let ref_db =
    Mirage_workloads.Refgen.build ~seed:5 schema
      ~specs:[ ("sensor", [ ("s_kind", Mirage_workloads.Refgen.Cat_string ("KIND", 8)) ]) ]
  in
  (match Driver.generate workload ~ref_db ~prod_env with
  | Error d -> prerr_endline ("mirage failed: " ^ Mirage_core.Diag.to_string d)
  | Ok r ->
      print_endline "mirage:";
      List.iter
        (fun (e : Error.query_error) ->
          Printf.printf "  %-12s err=%.5f\n" e.Error.qe_name e.Error.qe_relative)
        (Driver.measure_errors r));
  let aqts = (Mirage_core.Extract.run workload ~ref_db ~prod_env).Mirage_core.Extract.aqts in
  List.iter
    (fun (name, gen) ->
      let b : Mirage_baselines.Types.result = gen workload ~ref_db ~prod_env ~seed:3 in
      Printf.printf "%s:\n" name;
      List.iter
        (fun (e : Error.query_error) ->
          let err =
            if List.mem e.Error.qe_name b.Mirage_baselines.Types.b_unsupported then 1.0
            else e.Error.qe_relative
          in
          Printf.printf "  %-12s err=%.5f\n" e.Error.qe_name err)
        (Error.measure ~aqts ~db:b.Mirage_baselines.Types.b_db
           ~env:b.Mirage_baselines.Types.b_env))
    [
      ("touchstone", Mirage_baselines.Touchstone.generate);
      ("hydra", Mirage_baselines.Hydra.generate);
    ]
