(* Quickstart: regenerate a two-table application from its cardinality
   constraints.

   We play both roles: first we build a tiny "production" database (which a
   real deployment would never expose), then we hand Mirage only what a DBA
   could legally export — the schema, the annotated query templates and the
   production parameter values — and let it produce a synthetic database
   plus new parameters that reproduce every operator cardinality.

   Run with:  dune exec examples/quickstart.exe *)

module Schema = Mirage_sql.Schema
module Value = Mirage_sql.Value
module Pred = Mirage_sql.Pred
module Parser = Mirage_sql.Parser
module Plan = Mirage_relalg.Plan
module Db = Mirage_engine.Db
module Workload = Mirage_core.Workload
module Driver = Mirage_core.Driver
module Error = Mirage_core.Error

(* 1. the schema: customers and their orders *)
let schema =
  Schema.make
    [
      {
        Schema.tname = "customer";
        pk = "c_id";
        nonkeys =
          [
            { Schema.cname = "c_segment"; domain_size = 5; kind = Schema.Kstring };
            { Schema.cname = "c_balance"; domain_size = 500; kind = Schema.Kint };
          ];
        fks = [];
        row_count = 1_000;
      };
      {
        Schema.tname = "orders";
        pk = "o_id";
        nonkeys =
          [
            { Schema.cname = "o_date"; domain_size = 365; kind = Schema.Kint };
            { Schema.cname = "o_amount"; domain_size = 1_000; kind = Schema.Kint };
          ];
        fks = [ { Schema.fk_col = "o_cust"; references = "customer" } ];
        row_count = 8_000;
      };
    ]

(* 2. the query templates, annotated with parameters ($name) *)
let q_recent_big_spenders =
  (* customers of a segment joined with their recent large orders *)
  Plan.Join
    {
      jt = Plan.Inner;
      pk_table = "customer";
      fk_table = "orders";
      fk_col = "o_cust";
      left = Plan.Select (Parser.pred "c_segment = $seg", Plan.Table "customer");
      right =
        Plan.Select (Parser.pred "o_date > $since and o_amount >= $min", Plan.Table "orders");
    }

let q_dormant_customers =
  (* anti join: customers with a balance but no orders at all *)
  Plan.Join
    {
      jt = Plan.Left_anti;
      pk_table = "customer";
      fk_table = "orders";
      fk_col = "o_cust";
      left = Plan.Select (Parser.pred "c_balance > $bal", Plan.Table "customer");
      right = Plan.Table "orders";
    }

let workload =
  Workload.make schema
    [
      { Workload.q_name = "recent_big_spenders"; q_plan = q_recent_big_spenders };
      { Workload.q_name = "dormant_customers"; q_plan = q_dormant_customers };
    ]

(* 3. a stand-in production database (normally this is the real system) *)
let production () =
  Mirage_workloads.Refgen.build ~seed:123 schema
    ~specs:
      [
        ( "customer",
          [
            ("c_segment", Mirage_workloads.Refgen.Cat_string ("SEG", 5));
            ("c_balance", Mirage_workloads.Refgen.Skewed_int (500, 1.4));
          ] );
        ( "orders",
          [
            ("o_date", Mirage_workloads.Refgen.Date_int 365);
            ("o_amount", Mirage_workloads.Refgen.Skewed_int (1_000, 1.2));
          ] );
      ]

let prod_env =
  Pred.Env.of_list
    [
      ("seg", Pred.Env.Scalar (Value.Str "SEG#00002"));
      ("since", Pred.Env.Scalar (Value.Int 300));
      ("min", Pred.Env.Scalar (Value.Int 250));
      ("bal", Pred.Env.Scalar (Value.Int 400));
    ]

let () =
  let ref_db = production () in
  Printf.printf "production: %d customers, %d orders\n"
    (Db.row_count ref_db "customer") (Db.row_count ref_db "orders");
  match Driver.generate workload ~ref_db ~prod_env with
  | Error d ->
      prerr_endline ("generation failed: " ^ Mirage_core.Diag.to_string d)
  | Ok r ->
      Printf.printf "generated synthetic database in %.3fs\n"
        r.Driver.r_timings.Driver.t_total;
      (* the instantiated workload W' *)
      print_endline "instantiated parameters:";
      List.iter
        (fun (p, b) ->
          match b with
          | Pred.Env.Scalar v -> Printf.printf "  $%s = %s\n" p (Value.to_string v)
          | Pred.Env.Vlist vs ->
              Printf.printf "  $%s = (%s)\n" p
                (String.concat ", " (List.map Value.to_string vs)))
        (Pred.Env.bindings r.Driver.r_env);
      (* replay: every annotated cardinality must be reproduced *)
      print_endline "replaying the workload on the synthetic database:";
      List.iter
        (fun (e : Error.query_error) ->
          Printf.printf "  %-22s relative error = %.5f  (views: %s vs %s)\n"
            e.Error.qe_name e.Error.qe_relative
            (String.concat "," (List.map string_of_int e.Error.qe_expected))
            (String.concat "," (List.map string_of_int e.Error.qe_actual)))
        (Driver.measure_errors r);
      (* export a sample of the synthetic data *)
      let csv = Db.to_csv r.Driver.r_db "customer" in
      let preview = String.split_on_char '\n' csv |> List.filteri (fun i _ -> i < 5) in
      print_endline "synthetic customer sample:";
      List.iter (fun l -> Printf.printf "  %s\n" l) preview
