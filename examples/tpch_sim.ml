(* Full TPC-H application simulation — the paper's headline result: all 22
   queries regenerated with a near-zero error bound.

   Run with:  dune exec examples/tpch_sim.exe [scale]   (default scale 0.2) *)

module Driver = Mirage_core.Driver
module Error = Mirage_core.Error

let () =
  let sf = try float_of_string Sys.argv.(1) with _ -> 0.2 in
  Printf.printf "building the TPC-H production environment at scale %.2f...\n%!" sf;
  let workload, ref_db, prod_env = Mirage_workloads.Tpch.make ~sf ~seed:7 in
  match Driver.generate workload ~ref_db ~prod_env with
  | Error d ->
      prerr_endline ("generation failed: " ^ Mirage_core.Diag.to_string d)
  | Ok r ->
      let t = r.Driver.r_timings in
      Printf.printf
        "generated in %.2fs (parse %.2fs, non-keys %.3fs, keys: status %.3fs + CP \
         %.3fs + populate %.3fs)\n"
        t.Driver.t_total t.Driver.t_extract
        (t.Driver.t_decouple +. t.Driver.t_cdf +. t.Driver.t_gd +. t.Driver.t_acc)
        t.Driver.t_cs t.Driver.t_cp t.Driver.t_pf;
      List.iter (fun w -> Printf.printf "note: %s\n" w) r.Driver.r_warnings;
      let errs = Driver.measure_errors r in
      Printf.printf "%-12s %s\n" "query" "relative error";
      List.iter
        (fun (e : Error.query_error) ->
          Printf.printf "%-12s %.5f%s\n" e.Error.qe_name e.Error.qe_relative
            (if e.Error.qe_relative = 0.0 then "  (exact)" else ""))
        errs;
      let exact =
        List.length (List.filter (fun (e : Error.query_error) -> e.Error.qe_relative = 0.0) errs)
      in
      Printf.printf "\n%d/22 queries reproduced exactly; worst case %.4f\n" exact
        (List.fold_left
           (fun acc (e : Error.query_error) -> max acc e.Error.qe_relative)
           0.0 errs)
