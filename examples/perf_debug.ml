(* Performance debugging (the paper's second motivating scenario, §1).

   A database team sees a slow query in production but cannot take the data
   out.  They export the execution metrics — plans plus per-operator output
   sizes — and regenerate the data processing environment with Mirage.  The
   regression reproduces on the synthetic database because the operator
   cardinalities (and hence the work each operator does) are preserved.

   Here the "regression" is a selective-looking filter that actually matches
   a huge fraction of lineitem, making the join explode.  We show that the
   replayed latency on the synthetic database tracks production latency.

   Run with:  dune exec examples/perf_debug.exe *)

module Plan = Mirage_relalg.Plan
module Parser = Mirage_sql.Parser
module Db = Mirage_engine.Db
module Exec = Mirage_engine.Exec
module Workload = Mirage_core.Workload
module Driver = Mirage_core.Driver
module Error = Mirage_core.Error

let () =
  (* the production application: TPC-H at a laptop scale *)
  let workload, ref_db, prod_env = Mirage_workloads.Tpch.make ~sf:0.3 ~seed:99 in
  (* the problematic query: Q3-shaped, whose date filters barely filter *)
  let slow_query =
    {
      Workload.q_name = "regressed_q3";
      q_plan =
        Plan.Join
          {
            jt = Plan.Inner;
            pk_table = "orders";
            fk_table = "lineitem";
            fk_col = "l_orderkey";
            left =
              Plan.Join
                {
                  jt = Plan.Inner;
                  pk_table = "customer";
                  fk_table = "orders";
                  fk_col = "o_custkey";
                  left = Plan.Table "customer";
                  right =
                    Plan.Select (Parser.pred "o_orderdate < $pd_d", Plan.Table "orders");
                };
            right = Plan.Select (Parser.pred "l_shipdate > $pd_d2", Plan.Table "lineitem");
          };
    }
  in
  let workload =
    Workload.make workload.Workload.w_schema
      (workload.Workload.w_queries @ [ slow_query ])
  in
  let prod_env =
    Mirage_sql.Pred.Env.add_scalar "pd_d" (Mirage_sql.Value.Int 2300)
      (Mirage_sql.Pred.Env.add_scalar "pd_d2" (Mirage_sql.Value.Int 100) prod_env)
  in
  print_endline "extracting execution metrics from production and regenerating...";
  match Driver.generate workload ~ref_db ~prod_env with
  | Error d ->
      prerr_endline ("generation failed: " ^ Mirage_core.Diag.to_string d)
  | Ok r ->
      let aqts = r.Driver.r_extraction.Mirage_core.Extract.aqts in
      let lats =
        Error.latencies ~aqts ~ref_db ~prod_env ~synth_db:r.Driver.r_db
          ~synth_env:r.Driver.r_env ~repeat:3
      in
      Printf.printf "%-16s %12s %12s\n" "query" "prod(ms)" "synthetic(ms)";
      let interesting = [ "tpch_q1"; "tpch_q3"; "tpch_q6"; "regressed_q3" ] in
      List.iter
        (fun (l : Error.latency) ->
          if List.mem l.Error.lat_name interesting then
            Printf.printf "%-16s %12.2f %12.2f\n" l.Error.lat_name
              (1000.0 *. l.Error.lat_ref)
              (1000.0 *. l.Error.lat_synth))
        lats;
      let reg = List.find (fun (l : Error.latency) -> l.Error.lat_name = "regressed_q3") lats in
      let q6 = List.find (fun (l : Error.latency) -> l.Error.lat_name = "tpch_q6") lats in
      Printf.printf
        "\nthe regression reproduces without production data: regressed_q3 runs %.1fx \
         slower than the cheap tpch_q6 in production, and %.1fx slower on the \
         regenerated environment — the expensive query stays expensive, so the \
         developers can debug it offline.\n"
        (reg.Error.lat_ref /. q6.Error.lat_ref)
        (reg.Error.lat_synth /. q6.Error.lat_synth);
      let errs = Driver.measure_errors r in
      let reg_err =
        List.find (fun (e : Error.query_error) -> e.Error.qe_name = "regressed_q3") errs
      in
      Printf.printf "regressed_q3 cardinality error on the synthetic database: %.5f\n"
        reg_err.Error.qe_relative
